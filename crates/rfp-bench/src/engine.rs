//! Work-stealing parallel experiment engine.
//!
//! Every experiment ultimately needs the same thing: the full workload
//! suite simulated under one or more [`CoreConfig`]s. The engine
//! flattens all `(config, workload)` pairs into one global job grid and
//! lets a pool of scoped threads *steal* jobs off a shared atomic index —
//! so a long-running workload never leaves the rest of a static chunk's
//! cores idle, and multiple configurations fill the machine together
//! instead of running one after another.
//!
//! Results are reduced into per-job slots indexed by grid position, so
//! the output order is identical no matter how many threads ran or how
//! the jobs interleaved. Each simulation is seeded and single-threaded,
//! which makes the whole grid bit-deterministic (see
//! `tests/parallel_determinism.rs`).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use rfp_core::{
    report_for, simulate_workload, simulate_workload_probed, simulate_workload_probed_from_trace,
    warm_up_workload, CoreConfig, VpMode, WarmState,
};
use rfp_obs::{CpiStackSink, EngineTracer, MetricsSink, ProfileSink, TeeProbe};
use rfp_stats::{CoreStats, CpiReport, ObsMetrics, ProfileReport, SimReport, CPI_INTERVAL_SHIFT};
use rfp_trace::{CompiledTrace, MicroOp, Workload};
use rfp_types::{fnv1a_64, json_escape};

use crate::store::{self, ExpStore, Tier};

/// Reads environment variable `name` and parses it as `T`.
///
/// Returns `None` when the variable is unset. When it is set but
/// malformed, exits the process with a clear error instead of silently
/// falling back — `RFP_TRACE_LEN=120_000` used to quietly run the default
/// length, which is exactly the kind of mistake that wastes a sweep.
pub fn env_parsed<T: std::str::FromStr>(name: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("error: {name}={raw:?} is not a valid value: {e}");
            std::process::exit(2);
        }
    }
}

/// `RFP_TRACE_LEN` with strict parsing ([`env_parsed`]), or `default`
/// when unset. Zero-length runs are rejected too.
pub fn trace_len_from_env(default: u64) -> u64 {
    match env_parsed::<u64>("RFP_TRACE_LEN") {
        Some(0) => {
            eprintln!("error: RFP_TRACE_LEN must be >= 1");
            std::process::exit(2);
        }
        Some(n) => n,
        None => default,
    }
}

/// `RFP_INSPECT_WINDOWS` — how many anomalous capture windows
/// `experiments inspect` records — with strict parsing ([`env_parsed`]),
/// defaulting to 4. Zero windows would capture nothing and is rejected.
pub fn inspect_windows_from_env() -> usize {
    match env_parsed::<usize>("RFP_INSPECT_WINDOWS") {
        Some(0) => {
            eprintln!("error: RFP_INSPECT_WINDOWS must be >= 1");
            std::process::exit(2);
        }
        Some(n) => n,
        None => 4,
    }
}

/// Worker-thread count to use when the caller doesn't override it:
/// the `RFP_THREADS` environment variable if set (strictly parsed — a
/// malformed or zero value is an error, not a silent fallback), otherwise
/// the machine's available parallelism.
pub fn default_threads() -> usize {
    match env_parsed::<usize>("RFP_THREADS") {
        Some(0) => {
            eprintln!("error: RFP_THREADS must be >= 1");
            std::process::exit(2);
        }
        Some(n) => n,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    }
}

/// Content hash of a configuration (FNV-1a over its `Debug` rendering).
///
/// Two configs that would simulate identically hash identically, so a
/// cache keyed by this value dedupes the same configuration reached via
/// different experiments — `fig10`'s RFP run and `fig13`'s are one run.
///
/// # Examples
///
/// ```
/// use rfp_bench::config_key;
/// use rfp_core::CoreConfig;
///
/// let a = config_key(&CoreConfig::tiger_lake());
/// assert_eq!(a, config_key(&CoreConfig::tiger_lake()));
/// assert_ne!(a, config_key(&CoreConfig::tiger_lake().with_rfp()));
/// ```
pub fn config_key(cfg: &CoreConfig) -> u64 {
    fnv1a_64(format!("{cfg:?}").as_bytes())
}

/// How the engine reuses warmup work across the grid (`RFP_WARM_MODE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmMode {
    /// No snapshotting at all: every job re-runs its own warmup through
    /// the legacy per-job path. Useful as the byte-identity reference.
    Off,
    /// The default. Jobs whose *warmup-relevant* configuration projection
    /// matches fork one shared [`WarmState`]; results are byte-identical
    /// to straight-through runs by construction.
    #[default]
    Exact,
    /// [`WarmMode::Exact`] plus approximate cross-config sharing: configs
    /// that differ only in measurement-phase features (RFP, VP) warm up
    /// once under a common *twin* baseline and transplant its caches and
    /// predictors ([`WarmState::transplant`]). Fast, but measured numbers
    /// are an approximation — keep it out of publication sweeps.
    Checkpoint,
}

impl WarmMode {
    /// Parses `RFP_WARM_MODE` (`off` | `exact` | `checkpoint`; unset means
    /// `exact`), exiting with a clear error on anything else.
    pub fn from_env() -> Self {
        match std::env::var("RFP_WARM_MODE")
            .ok()
            .as_deref()
            .map(str::trim)
        {
            None | Some("") | Some("exact") => WarmMode::Exact,
            Some("off") => WarmMode::Off,
            Some("checkpoint") => WarmMode::Checkpoint,
            Some(other) => {
                eprintln!(
                    "error: RFP_WARM_MODE={other:?} is not a valid value \
                     (expected off, exact, or checkpoint)"
                );
                std::process::exit(2);
            }
        }
    }
}

/// Simulation fidelity for grid jobs (`RFP_SIM_MODE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Simulate every job's full measured region. The accuracy
    /// reference, and the default.
    #[default]
    Full,
    /// Phase-sampled simulation: cluster each workload's interval BBVs
    /// (computed by the trace compiler), simulate one representative
    /// interval per phase plus the ragged tail, and extrapolate every
    /// counter by integer phase weights. Several times faster than
    /// `Full`; per-metric error bounds are committed in
    /// `baselines/sampling_tolerances.json` and enforced by CI.
    Sample,
}

impl std::str::FromStr for SimMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "" | "full" => Ok(SimMode::Full),
            "sample" => Ok(SimMode::Sample),
            other => Err(format!("expected full or sample, got {other:?}")),
        }
    }
}

impl SimMode {
    /// Parses `RFP_SIM_MODE` strictly ([`env_parsed`]; `full` | `sample`);
    /// unset means [`SimMode::Full`].
    pub fn from_env() -> Self {
        env_parsed::<SimMode>("RFP_SIM_MODE").unwrap_or_default()
    }
}

/// Interval size of the sampler's BBV grid, in micro-ops. Deliberately
/// equal to the CPI-stack epoch size, so a phase member's interval index
/// doubles as its CPI epoch during extrapolation.
pub const SAMPLE_INTERVAL_UOPS: u64 = 1 << CPI_INTERVAL_SHIFT;

/// Detailed-warming prefix re-simulated in front of every sampled
/// window: the ops immediately before a representative interval rebuild
/// the short-lived state (ROB contents, queue occupancy, MSHR fill) that
/// the long-lived warm snapshot cannot carry across the jump.
pub const SAMPLE_WARM_PREFIX: u64 = 2048;

/// One phase of a [`SamplePlan`]: a cluster of behaviourally-equivalent
/// intervals and the representative simulated on their behalf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplePhase {
    /// Interval index of the representative (the cluster medoid, ties
    /// broken toward the lowest index).
    pub rep: usize,
    /// Member interval indices, ascending (`rep` included).
    pub members: Vec<usize>,
}

/// A workload's phase-sampling plan: which intervals to simulate and the
/// integer weight each result is extrapolated by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplePlan {
    /// Phases in discovery order (ascending first-member index).
    pub phases: Vec<SamplePhase>,
    /// Measured ops past the interval grid, simulated exactly with
    /// weight 1.
    pub tail: u64,
}

impl SamplePlan {
    /// Measured uops the plan actually simulates (one interval per phase
    /// plus the tail) — the numerator of the sampler's speedup estimate.
    pub fn simulated_uops(&self, interval_len: u64) -> u64 {
        self.phases.len() as u64 * interval_len + self.tail
    }
}

/// Clusters `trace`'s interval BBV signatures into phases.
///
/// Deterministic greedy leader clustering: intervals join the first
/// existing phase whose *leader* (first member) is within an L1 distance
/// of `interval_len / 16` op counts, else found a new phase. After
/// grouping, each phase's representative is re-picked as the medoid —
/// the member minimizing total L1 distance to the rest — so an atypical
/// leader doesn't get extrapolated across the whole cluster. No RNG, no
/// floating point: the plan is a pure function of the trace.
pub fn build_sample_plan(trace: &CompiledTrace) -> SamplePlan {
    let sigs = trace.intervals();
    let threshold = trace.interval_len() / 16;
    let mut phases: Vec<SamplePhase> = Vec::new();
    for (i, sig) in sigs.iter().enumerate() {
        match phases
            .iter_mut()
            .find(|p| sigs[p.members[0]].l1_distance(sig) <= threshold)
        {
            Some(p) => p.members.push(i),
            None => phases.push(SamplePhase {
                rep: i,
                members: vec![i],
            }),
        }
    }
    for p in &mut phases {
        let mut best = (u64::MAX, usize::MAX);
        for &a in &p.members {
            let d: u64 = p
                .members
                .iter()
                .map(|&b| sigs[a].l1_distance(&sigs[b]))
                .sum();
            if (d, a) < best {
                best = (d, a);
            }
        }
        p.rep = best.1;
    }
    SamplePlan {
        phases,
        tail: trace.tail_len(),
    }
}

/// The *warmup-relevant projection* of a configuration: `cfg` with every
/// field that provably cannot influence warm-state construction
/// normalized to a canonical value.
///
/// Two configs with equal projections produce bit-identical warm state,
/// so their grid jobs can share one snapshot. The rule for adding fields
/// here is conservative: a field may be normalized **only** when the
/// simulator provably never reads it before the stats-reset boundary
/// under the rest of the projection — anything else must stay, which
/// `tests/parallel_determinism.rs` enforces by perturbation.
pub fn warm_projection(cfg: &CoreConfig) -> CoreConfig {
    let mut c = cfg.clone();
    if !matches!(c.vp, VpMode::Epp(_)) {
        // The core RNG is drawn only for EPP SSBF false-positive rolls;
        // under every other VP mode the seed and rate are dead state.
        c.seed = 0;
        c.epp_false_positive_rate = 0.0;
    }
    if let Some(rfp) = c.rfp.as_mut() {
        if !rfp.critical_only {
            // The criticality table only consults the threshold when
            // critical-only targeting is on.
            rfp.criticality_threshold = 0;
        }
        if !c.vp.is_on() {
            // The VP filter can only veto a prefetch when a value
            // prediction exists to veto with.
            rfp.vp_filter = false;
        }
    }
    c
}

/// Snapshot-sharing key: [`config_key`] of the [`warm_projection`].
pub fn warm_key(cfg: &CoreConfig) -> u64 {
    config_key(&warm_projection(cfg))
}

/// The *twin* of a configuration for [`WarmMode::Checkpoint`]: the same
/// memory hierarchy, branch handling, and core sizing, but with the
/// measurement-phase features (RFP, value prediction, dedicated RFP
/// ports) stripped, then projected. Every config in a typical sweep that
/// varies only those features collapses onto one twin, whose warm caches
/// and predictors are transplanted into each measured config.
pub fn warm_twin(cfg: &CoreConfig) -> CoreConfig {
    let mut c = cfg.clone();
    c.rfp = None;
    c.vp = VpMode::Off;
    c.ports.dedicated_rfp = 0;
    warm_projection(&c)
}

/// Counter snapshot of a [`WarmPool`] (see [`WarmPool::stats`]).
#[derive(Debug, Clone)]
pub struct WarmPoolStats {
    /// The pool's sharing mode.
    pub mode: WarmMode,
    /// Forks served from an already-built snapshot.
    pub snapshot_hits: u64,
    /// Snapshots built (first touch of a `(key, workload)` cell).
    pub snapshot_misses: u64,
    /// Checkpoint-mode transplants performed.
    pub transplants: u64,
    /// Workload traces synthesized (first touch + post-eviction rebuilds).
    pub trace_builds: u64,
    /// Snapshots currently held live.
    pub live_snapshots: usize,
    /// Approximate host bytes held by live snapshots.
    pub live_snapshot_bytes: usize,
}

impl WarmPoolStats {
    /// Renders the stats as one JSONL line, appended to `--telemetry-out`
    /// streams so CI can assert the pool actually worked.
    pub fn jsonl_line(&self) -> String {
        let mode = match self.mode {
            WarmMode::Off => "off",
            WarmMode::Exact => "exact",
            WarmMode::Checkpoint => "checkpoint",
        };
        format!(
            "{{\"warm_pool\":{{\"schema\":{TELEMETRY_SCHEMA_VERSION},\
             \"mode\":\"{mode}\",\"snapshot_hits\":{},\
             \"snapshot_misses\":{},\"transplants\":{},\"trace_builds\":{},\
             \"live_snapshots\":{},\"live_snapshot_bytes\":{}}}}}\n",
            self.snapshot_hits,
            self.snapshot_misses,
            self.transplants,
            self.trace_builds,
            self.live_snapshots,
            self.live_snapshot_bytes,
        )
    }
}

/// Shared warm-state cache behind the grid runners: memoizes one
/// synthesized trace per workload and one [`WarmState`] per
/// `(warm key, workload)` cell, both `Arc`-shared across the
/// work-stealing workers.
///
/// Snapshots are built lazily inside a per-cell `OnceLock`, so two
/// workers racing to the same cell build it exactly once and one of them
/// forks. Traces and unpinned snapshots are evicted as soon as every
/// config in the running grid has finished a workload; pinned keys
/// (see [`WarmPool::pin_config`]) survive for follow-up grids — the
/// observability passes fork the same snapshots the plain sweep built.
pub struct WarmPool {
    mode: WarmMode,
    sim: SimMode,
    /// Measured uops per run (the grid's `len`).
    measured: u64,
    /// Warmup uops per run (`len / 2`, matching `simulate_workload`).
    warmup: u64,
    /// Persistent content-addressed store ([`crate::ExpStore`]), when
    /// configured: warm snapshots and compiled arenas are looked up here
    /// before being built (and published after), and the grid runner
    /// checks it for finished job results before simulating at all.
    store: Option<Arc<ExpStore>>,
    /// Engine self-tracer ([`EngineTracer`]), when armed: the pool and
    /// the grid runner record spans for trace compiles, warm captures,
    /// store traffic and job lifecycle. `None` (the default) keeps the
    /// cost to one branch per site.
    tracer: Option<Arc<EngineTracer>>,
    pinned: Mutex<HashSet<u64>>,
    traces: Mutex<HashMap<usize, Arc<CompiledTrace>>>,
    plans: Mutex<HashMap<usize, Arc<SamplePlan>>>,
    #[allow(clippy::type_complexity)]
    snapshots: Mutex<HashMap<(u64, usize), Arc<OnceLock<Arc<WarmState>>>>>,
    snapshot_hits: AtomicU64,
    snapshot_misses: AtomicU64,
    transplants: AtomicU64,
    trace_builds: AtomicU64,
}

impl std::fmt::Debug for WarmPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("WarmPool")
            .field("measured", &self.measured)
            .field("stats", &stats)
            .finish()
    }
}

impl WarmPool {
    /// A pool for grids measuring `len` uops per job, sharing warm state
    /// according to `mode`, at full simulation fidelity.
    pub fn new(mode: WarmMode, len: u64) -> Self {
        Self::with_sim(mode, SimMode::Full, len)
    }

    /// [`WarmPool::new`] with an explicit simulation fidelity. Under
    /// [`SimMode::Sample`] the warm mode is ignored by grid jobs — the
    /// sampler always snapshots under the config's [`warm_twin`] and
    /// jumps between representative intervals from there.
    pub fn with_sim(mode: WarmMode, sim: SimMode, len: u64) -> Self {
        WarmPool {
            mode,
            sim,
            measured: len,
            warmup: len / 2,
            store: None,
            tracer: None,
            pinned: Mutex::new(HashSet::new()),
            traces: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
            snapshots: Mutex::new(HashMap::new()),
            snapshot_hits: AtomicU64::new(0),
            snapshot_misses: AtomicU64::new(0),
            transplants: AtomicU64::new(0),
            trace_builds: AtomicU64::new(0),
        }
    }

    /// [`WarmPool::with_sim`] with both modes taken from the environment
    /// (`RFP_WARM_MODE`, `RFP_SIM_MODE`), plus the persistent store when
    /// `RFP_STORE` is set.
    pub fn from_env(len: u64) -> Self {
        Self::with_sim(WarmMode::from_env(), SimMode::from_env(), len)
            .with_store(ExpStore::from_env())
    }

    /// Replaces the pool's persistent store (`None` disables it). The
    /// builder form keeps test pools store-free by default while letting
    /// binaries override the `RFP_STORE` environment resolution
    /// (`--store` / `--no-store`).
    pub fn with_store(mut self, store: Option<Arc<ExpStore>>) -> Self {
        self.store = store;
        self
    }

    /// The pool's persistent store, when configured.
    pub fn store(&self) -> Option<&Arc<ExpStore>> {
        self.store.as_ref()
    }

    /// Arms (or disarms, with `None`) the engine self-tracer. Tracing
    /// never changes simulated results — spans carry only engine-side
    /// counters, and wall times stay in the spans' timing stratum — so
    /// `experiments all` output is byte-identical tracer on or off.
    pub fn with_tracer(mut self, tracer: Option<Arc<EngineTracer>>) -> Self {
        self.tracer = tracer;
        self
    }

    /// The pool's engine self-tracer, when armed.
    pub fn tracer(&self) -> Option<&Arc<EngineTracer>> {
        self.tracer.as_ref()
    }

    /// The pool's sharing mode.
    pub fn mode(&self) -> WarmMode {
        self.mode
    }

    /// The pool's simulation fidelity.
    pub fn sim(&self) -> SimMode {
        self.sim
    }

    /// Measured uops per job this pool was sized for.
    pub fn measured_len(&self) -> u64 {
        self.measured
    }

    /// Marks `cfg`'s snapshot keys as pinned: its snapshots are built
    /// even if the key appears only once in a grid, and survive
    /// end-of-workload eviction so later grids (the observability
    /// re-runs) fork them instead of re-warming.
    pub fn pin_config(&self, cfg: &CoreConfig) {
        let mut pinned = self.pinned.lock().expect("pinned lock");
        pinned.insert(warm_key(cfg));
        if self.mode == WarmMode::Checkpoint || self.sim == SimMode::Sample {
            pinned.insert(config_key(&warm_twin(cfg)));
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WarmPoolStats {
        let snaps = self.snapshots.lock().expect("snapshot lock");
        let live_snapshot_bytes = snaps
            .values()
            .filter_map(|cell| cell.get())
            .map(|s| s.approx_bytes())
            .sum();
        WarmPoolStats {
            mode: self.mode,
            snapshot_hits: self.snapshot_hits.load(Ordering::Relaxed),
            snapshot_misses: self.snapshot_misses.load(Ordering::Relaxed),
            transplants: self.transplants.load(Ordering::Relaxed),
            trace_builds: self.trace_builds.load(Ordering::Relaxed),
            live_snapshots: snaps.len(),
            live_snapshot_bytes,
        }
    }

    /// The memoized compiled trace (warmup + measured, with interval BBV
    /// signatures over the measured region) for `suite[wi]`, built on
    /// first touch. The compiled op stream is byte-identical to the
    /// generator's, so full-fidelity jobs slice it directly.
    fn trace(&self, suite: &[Workload], wi: usize) -> Arc<CompiledTrace> {
        let mut traces = self.traces.lock().expect("trace lock");
        if let Some(t) = traces.get(&wi) {
            return Arc::clone(t);
        }
        // Built (or loaded) while holding the lock: compilation is ~1%
        // of a job's simulation time, and building once beats racing
        // builds.
        let total = self.measured + self.warmup;
        let name = suite[wi].name;
        let t0 = self.tracer.as_ref().map(|tr| tr.now_nanos());
        let span = |outcome: &'static str, fields: Vec<(&'static str, u64)>| {
            if let (Some(tr), Some(t0)) = (&self.tracer, t0) {
                tr.record("trace-compile", name.to_string(), outcome, fields, 0, t0);
            }
        };
        let t = if let Some(s) = &self.store {
            let key = store::trace_key(total, self.warmup, SAMPLE_INTERVAL_UOPS, name);
            match s.get::<CompiledTrace>(Tier::Trace, &key) {
                Some((t, n)) => {
                    if let Some(tr) = &self.tracer {
                        tr.instant(
                            "store-get",
                            format!("trace|{name}"),
                            "hit",
                            vec![("bytes", n)],
                            0,
                        );
                    }
                    span("store-hit", vec![("uops", total), ("bytes", n)]);
                    Arc::new(t)
                }
                None => {
                    if let Some(tr) = &self.tracer {
                        tr.instant("store-get", format!("trace|{name}"), "miss", vec![], 0);
                    }
                    self.trace_builds.fetch_add(1, Ordering::Relaxed);
                    let t = suite[wi].compiled(total, self.warmup, SAMPLE_INTERVAL_UOPS);
                    let written = s.put(Tier::Trace, &key, &t);
                    if let Some(tr) = &self.tracer {
                        tr.instant(
                            "store-put",
                            format!("trace|{name}"),
                            "published",
                            vec![("bytes", written)],
                            0,
                        );
                    }
                    span("built", vec![("uops", total)]);
                    Arc::new(t)
                }
            }
        } else {
            self.trace_builds.fetch_add(1, Ordering::Relaxed);
            let t = Arc::new(suite[wi].compiled(total, self.warmup, SAMPLE_INTERVAL_UOPS));
            span("built", vec![("uops", total)]);
            t
        };
        traces.insert(wi, Arc::clone(&t));
        t
    }

    /// The memoized [`SamplePlan`] for `suite[wi]`, clustered on first
    /// touch from the compiled trace's BBV grid.
    fn sample_plan(&self, suite: &[Workload], wi: usize) -> Arc<SamplePlan> {
        if let Some(p) = self.plans.lock().expect("plan lock").get(&wi) {
            return Arc::clone(p);
        }
        let trace = self.trace(suite, wi);
        let mut plans = self.plans.lock().expect("plan lock");
        Arc::clone(
            plans
                .entry(wi)
                .or_insert_with(|| Arc::new(build_sample_plan(&trace))),
        )
    }

    /// The shared snapshot for `(key, wi)`, warming `cfg` on first touch.
    /// Concurrent callers block on the cell's `OnceLock` and share the
    /// one build.
    fn snapshot(
        &self,
        cfg: &CoreConfig,
        key: u64,
        suite: &[Workload],
        wi: usize,
    ) -> Arc<WarmState> {
        let cell = {
            let mut snaps = self.snapshots.lock().expect("snapshot lock");
            Arc::clone(snaps.entry((key, wi)).or_default())
        };
        let mut built = false;
        let state = cell.get_or_init(|| {
            built = true;
            self.snapshot_misses.fetch_add(1, Ordering::Relaxed);
            let name = suite[wi].name;
            let t0 = self.tracer.as_ref().map(|tr| tr.now_nanos());
            let span = |outcome: &'static str, fields: Vec<(&'static str, u64)>| {
                if let (Some(tr), Some(t0)) = (&self.tracer, t0) {
                    tr.record(
                        "warm-capture",
                        format!("{name}|{key:016x}"),
                        outcome,
                        fields,
                        0,
                        t0,
                    );
                }
            };
            // The persistent store is checked under the *projection* key:
            // configs sharing a projection produce bit-identical warm
            // state, so a snapshot persisted by one serves them all —
            // across sweeps and processes, not just within this grid.
            if let Some(s) = &self.store {
                let skey = store::warm_snapshot_key(self.warmup, name, &warm_projection(cfg));
                if let Some((ws, n)) = s.get::<WarmState>(Tier::Warm, &skey) {
                    if let Some(tr) = &self.tracer {
                        tr.instant(
                            "store-get",
                            format!("warm|{name}|{key:016x}"),
                            "hit",
                            vec![("bytes", n)],
                            0,
                        );
                    }
                    span("store-hit", vec![("warmup", self.warmup), ("bytes", n)]);
                    return Arc::new(ws);
                }
                if let Some(tr) = &self.tracer {
                    tr.instant(
                        "store-get",
                        format!("warm|{name}|{key:016x}"),
                        "miss",
                        vec![],
                        0,
                    );
                }
                let trace = self.trace(suite, wi);
                let ws =
                    warm_up_workload(cfg, &suite[wi], self.warmup, trace.ops().iter().copied())
                        .expect("valid config");
                let written = s.put(Tier::Warm, &skey, &ws);
                if let Some(tr) = &self.tracer {
                    tr.instant(
                        "store-put",
                        format!("warm|{name}|{key:016x}"),
                        "published",
                        vec![("bytes", written)],
                        0,
                    );
                }
                span("built", vec![("warmup", self.warmup)]);
                return Arc::new(ws);
            }
            let trace = self.trace(suite, wi);
            let ws = Arc::new(
                warm_up_workload(cfg, &suite[wi], self.warmup, trace.ops().iter().copied())
                    .expect("valid config"),
            );
            span("built", vec![("warmup", self.warmup)]);
            ws
        });
        if !built {
            self.snapshot_hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(state)
    }

    /// Forks the §9.4 warm snapshot for `suite[wi]` under `cfg` and runs
    /// the measured region with `probe` attached, returning the stats and
    /// the probe. Always the *exact* fork path (the probe observes the
    /// true trajectory) regardless of the pool's warm/sim mode — this is
    /// the `experiments inspect` two-pass entry point, where both passes
    /// must replay the identical measured stream.
    pub fn fork_probed<Q: rfp_obs::Probe>(
        &self,
        cfg: &CoreConfig,
        suite: &[Workload],
        wi: usize,
        probe: Q,
    ) -> (rfp_stats::CoreStats, Q) {
        let trace = self.trace(suite, wi);
        let snap = self.snapshot(cfg, warm_key(cfg), suite, wi);
        let rest = trace.ops()[snap.consumed_uops() as usize..].iter().copied();
        snap.resume_probed(rest, probe)
    }

    /// Drops `suite[wi]`'s trace and unpinned snapshots — called when the
    /// last in-flight grid job for that workload finishes, bounding the
    /// pool's footprint to roughly one workload band.
    fn evict_workload(&self, wi: usize) {
        let pinned = self.pinned.lock().expect("pinned lock");
        let mut snaps = self.snapshots.lock().expect("snapshot lock");
        snaps.retain(|(key, w), _| *w != wi || pinned.contains(key));
        drop(snaps);
        drop(pinned);
        self.traces.lock().expect("trace lock").remove(&wi);
        self.plans.lock().expect("plan lock").remove(&wi);
    }
}

/// Per-config fork plan for one pooled grid run.
struct JobPlan {
    /// [`warm_key`] of the config.
    exact: u64,
    /// Checkpoint or sampled runs only: the twin's key and (projected)
    /// config, when the config is *not* its own twin.
    twin: Option<(u64, CoreConfig)>,
    /// Whether a snapshot is worth building: its sharing key occurs at
    /// least twice in the grid, or is pinned.
    worthy: bool,
}

fn plan_jobs(pool: &WarmPool, configs: &[CoreConfig]) -> Vec<JobPlan> {
    let pinned = pool.pinned.lock().expect("pinned lock");
    let plans: Vec<JobPlan> = configs
        .iter()
        .map(|cfg| {
            let exact = warm_key(cfg);
            let twin = if pool.mode == WarmMode::Checkpoint || pool.sim == SimMode::Sample {
                let twin_cfg = warm_twin(cfg);
                let twin_key = config_key(&twin_cfg);
                (twin_key != exact).then_some((twin_key, twin_cfg))
            } else {
                None
            };
            JobPlan {
                exact,
                twin,
                worthy: false,
            }
        })
        .collect();
    // A snapshot pays for itself when its sharing key serves >= 2 jobs
    // (or a pinned follow-up grid). With a persistent store every
    // snapshot is worthy: a one-off build is amortized across future
    // sweeps, and a persisted snapshot turns a singleton job's warmup
    // into one disk read. (Byte-identity is unaffected — the fork path
    // is exact by construction.)
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for p in &plans {
        let share = p.twin.as_ref().map_or(p.exact, |(k, _)| *k);
        *counts.entry(share).or_insert(0) += 1;
    }
    plans
        .into_iter()
        .map(|mut p| {
            let share = p.twin.as_ref().map_or(p.exact, |(k, _)| *k);
            p.worthy = counts[&share] >= 2 || pinned.contains(&share) || pool.store.is_some();
            p
        })
        .collect()
}

/// Runs one `(config, workload)` job through the pool, returning the
/// report and which warm path served it.
fn pooled_job(
    pool: &WarmPool,
    cfg: &CoreConfig,
    plan: &JobPlan,
    suite: &[Workload],
    wi: usize,
    collect_obs: bool,
) -> (SimReport, &'static str) {
    if pool.sim == SimMode::Sample {
        return sampled_job(pool, cfg, plan, suite, wi, collect_obs);
    }
    let w = &suite[wi];
    let attach = |stats, sink: Option<ObsSinks>| {
        let mut r = report_for(w, stats);
        if let Some(sink) = sink {
            attach_obs(&mut r, sink);
        }
        r
    };
    if pool.mode == WarmMode::Off {
        let report = if collect_obs {
            let (mut r, sink) =
                simulate_workload_probed(cfg, w, pool.measured, obs_sinks()).expect("valid config");
            attach_obs(&mut r, sink);
            r
        } else {
            simulate_workload(cfg, w, pool.measured).expect("valid config")
        };
        return (report, "off");
    }
    if !plan.worthy {
        let trace = pool.trace(suite, wi);
        let report = if collect_obs {
            let (mut r, sink) = simulate_workload_probed_from_trace(
                cfg,
                w,
                pool.warmup,
                trace.ops().iter().copied(),
                obs_sinks(),
            )
            .expect("valid config");
            attach_obs(&mut r, sink);
            r
        } else {
            simulate_workload_probed_from_trace(
                cfg,
                w,
                pool.warmup,
                trace.ops().iter().copied(),
                rfp_obs::NoopProbe,
            )
            .expect("valid config")
            .0
        };
        return (report, "straight");
    }
    match &plan.twin {
        None => {
            let snap = pool.snapshot(cfg, plan.exact, suite, wi);
            let trace = pool.trace(suite, wi);
            let rest = trace.ops()[snap.consumed_uops() as usize..].iter().copied();
            let report = if collect_obs {
                let (stats, sink) = snap.resume_probed(rest, obs_sinks());
                attach(stats, Some(sink))
            } else {
                attach(snap.resume(rest), None)
            };
            (report, "fork")
        }
        Some((twin_key, twin_cfg)) => {
            let snap = pool.snapshot(twin_cfg, *twin_key, suite, wi);
            pool.transplants.fetch_add(1, Ordering::Relaxed);
            let trace = pool.trace(suite, wi);
            let measured = trace.ops()[pool.warmup as usize..].iter().copied();
            let report = if collect_obs {
                let (stats, sink) = snap
                    .transplant_probed(cfg, measured, obs_sinks())
                    .expect("valid config");
                attach(stats, Some(sink))
            } else {
                attach(snap.transplant(cfg, measured).expect("valid config"), None)
            };
            (report, "transplant")
        }
    }
}

/// Simulates one sampled window: up to [`SAMPLE_WARM_PREFIX`] ops of
/// detailed warming before `start`, then `mlen` measured ops, riding the
/// shared twin snapshot. When `cfg` *is* its own twin the fork resumes
/// exactly; otherwise the snapshot's caches and predictors are
/// transplanted into a fresh `cfg` core first.
fn window_run<Q: rfp_obs::Probe>(
    snap: &WarmState,
    cfg: &CoreConfig,
    own_twin: bool,
    ops: &[MicroOp],
    start: u64,
    mlen: u64,
    probe: Q,
) -> (CoreStats, Q) {
    let prefix = SAMPLE_WARM_PREFIX.min(start);
    let window = ops[(start - prefix) as usize..(start + mlen) as usize]
        .iter()
        .copied();
    if own_twin {
        snap.resume_window_probed(window, prefix, probe)
    } else {
        snap.transplant_window_probed(cfg, window, prefix, probe)
            .expect("valid config")
    }
}

/// Runs one `(config, workload)` job in [`SimMode::Sample`].
///
/// One warm snapshot per workload (under the config's [`warm_twin`], so
/// every config in the sweep shares it), then one simulated window per
/// phase representative plus the exactly-simulated ragged tail. Every
/// counter is extrapolated by integer phase weights
/// ([`CoreStats::merge_scaled`]), which preserves the simulator's linear
/// invariants — funnel balance, profile reconciliation, CPI conservation
/// — exactly; the representative's CPI stack is placed at each member's
/// epoch so interval time-series keep their shape. Host wall time is
/// summed unscaled (it measures real work done). With fewer than two
/// full intervals sampling cannot skip anything, so the job runs the
/// whole measured region straight from the compiled arena
/// (`"sample-full"`), which is bit-equal to full fidelity.
fn sampled_job(
    pool: &WarmPool,
    cfg: &CoreConfig,
    plan: &JobPlan,
    suite: &[Workload],
    wi: usize,
    collect_obs: bool,
) -> (SimReport, &'static str) {
    let w = &suite[wi];
    let compiled = pool.trace(suite, wi);
    if compiled.intervals().len() < 2 {
        let report = if collect_obs {
            let (mut r, sink) = simulate_workload_probed_from_trace(
                cfg,
                w,
                pool.warmup,
                compiled.ops().iter().copied(),
                obs_sinks(),
            )
            .expect("valid config");
            attach_obs(&mut r, sink);
            r
        } else {
            simulate_workload_probed_from_trace(
                cfg,
                w,
                pool.warmup,
                compiled.ops().iter().copied(),
                rfp_obs::NoopProbe,
            )
            .expect("valid config")
            .0
        };
        return (report, "sample-full");
    }
    let splan = pool.sample_plan(suite, wi);
    let (key, warm_cfg, own_twin) = match &plan.twin {
        None => (plan.exact, cfg, true),
        Some((k, c)) => (*k, c, false),
    };
    let snap = pool.snapshot(warm_cfg, key, suite, wi);
    // Windows to simulate: `(start, measured len, member epochs)`. The
    // weight of a window is its member count; members double as CPI
    // epoch indices because the interval size equals the epoch size.
    let interval = compiled.interval_len();
    let n_full = compiled.intervals().len();
    let mut windows: Vec<(u64, u64, &[usize])> = splan
        .phases
        .iter()
        .map(|p| (compiled.intervals()[p.rep].start, interval, &p.members[..]))
        .collect();
    let tail_epoch = [n_full];
    if splan.tail > 0 {
        let tail_start = compiled.measured_from() + n_full as u64 * interval;
        windows.push((tail_start, splan.tail, &tail_epoch[..]));
    }
    if !own_twin {
        pool.transplants
            .fetch_add(windows.len() as u64, Ordering::Relaxed);
    }
    let ops = compiled.ops();
    let mut stats = CoreStats::default();
    let report = if collect_obs {
        let mut obs = ObsMetrics::default();
        let mut cpi = CpiReport::default();
        let mut profile = ProfileReport::default();
        for &(start, mlen, epochs) in &windows {
            let (s, sink) = window_run(&snap, cfg, own_twin, ops, start, mlen, obs_sinks());
            let weight = epochs.len() as u64;
            stats.merge_scaled(&s, weight);
            obs.merge_scaled(&sink.a.a.into_metrics(), weight);
            let c = sink.a.b.into_report();
            for &e in epochs {
                cpi.merge_scaled_at(&c, 1, e);
            }
            profile.merge_scaled(&sink.b.into_report(), weight);
        }
        let mut r = report_for(w, stats);
        r.obs = Some(Box::new(obs));
        r.cpi = Some(Box::new(cpi));
        r.profile = Some(Box::new(profile));
        r
    } else {
        for &(start, mlen, epochs) in &windows {
            let (s, _) = window_run(&snap, cfg, own_twin, ops, start, mlen, rfp_obs::NoopProbe);
            stats.merge_scaled(&s, epochs.len() as u64);
        }
        report_for(w, stats)
    };
    let warm = if own_twin {
        "sample-fork"
    } else {
        "sample-transplant"
    };
    (report, warm)
}

/// The sink trio every instrumented grid job carries: latency metrics,
/// the CPI stack, and the per-load-PC profile, fanned out from one
/// event stream.
type ObsSinks = TeeProbe<TeeProbe<MetricsSink, CpiStackSink>, ProfileSink>;

fn obs_sinks() -> ObsSinks {
    TeeProbe::new(
        TeeProbe::new(MetricsSink::new(), CpiStackSink::new()),
        ProfileSink::new(),
    )
}

/// Moves a drained sink trio into the report's `obs`/`cpi`/`profile`
/// slots.
fn attach_obs(r: &mut SimReport, sink: ObsSinks) {
    r.obs = Some(Box::new(sink.a.a.into_metrics()));
    r.cpi = Some(Box::new(sink.a.b.into_report()));
    r.profile = Some(Box::new(sink.b.into_report()));
}

/// Per-job scheduling and wall-time telemetry from one grid run.
///
/// Everything here describes the *host-side* execution of a job —
/// which worker ran it, how deep the unclaimed queue was when it was
/// grabbed, how long it took — and is therefore host- and
/// schedule-dependent. It is deliberately kept out of [`SimReport`]
/// so the simulated results stay byte-deterministic; telemetry is a
/// side channel for engine tuning (see `--telemetry-out`).
#[derive(Debug, Clone)]
pub struct JobTelemetry {
    /// Grid position (`config_index * n_workloads + workload_index`).
    pub job: usize,
    /// Index of the configuration within the grid's config list.
    pub config: usize,
    /// Workload name.
    pub workload: &'static str,
    /// Worker thread (0-based) that claimed the job.
    pub worker: usize,
    /// Jobs not yet claimed at grab time, this one included — a proxy
    /// for how much stealing headroom remained.
    pub queue_depth: usize,
    /// Host wall time the simulation took.
    pub wall_nanos: u64,
    /// Warm path that served the job: `"off"` (legacy, pool disabled),
    /// `"straight"` (memoized trace, own warmup), `"fork"` (resumed a
    /// shared snapshot), or `"transplant"` (checkpoint-mode twin). Under
    /// [`SimMode::Sample`]: `"sample-fork"` / `"sample-transplant"`
    /// (phase-sampled windows off the twin snapshot) or `"sample-full"`
    /// (degenerate short run, simulated in full). `"store"` means the
    /// whole job was served from the persistent result store and nothing
    /// was simulated.
    pub warm: &'static str,
    /// Result-store outcome for this job: `"off"` (no store configured),
    /// `"hit"` (report read from disk, nothing simulated) or `"miss"`
    /// (simulated, then published). Warm-snapshot and trace-arena store
    /// traffic is shared across jobs and therefore only appears in the
    /// store's aggregate counters, not here.
    pub store: &'static str,
    /// Result-entry bytes read on a store hit (0 otherwise).
    pub store_bytes_read: u64,
    /// Result-entry bytes published on a store miss (0 otherwise, and 0
    /// when the best-effort publish failed).
    pub store_bytes_written: u64,
}

/// Everything one work-stealing grid run produces: the suite-ordered
/// reports (as [`run_grid`]) plus per-job telemetry sorted by grid
/// position.
#[derive(Debug)]
pub struct GridOutcome {
    /// One suite-ordered report vector per config, in config order.
    pub reports: Vec<Vec<SimReport>>,
    /// Per-job host telemetry, sorted by grid position.
    pub telemetry: Vec<JobTelemetry>,
}

/// Simulates the whole workload suite under every config in `configs`
/// on `threads` work-stealing workers, returning one suite-ordered
/// report vector per config (in `configs` order).
///
/// The job grid is `(config, workload)` pairs; a shared atomic index
/// hands the next job to whichever worker frees up first. Output is
/// deterministic and thread-count-independent: jobs land in slots keyed
/// by grid position and each simulation is internally seeded.
///
/// # Panics
///
/// Panics if a config is invalid or a worker thread panics.
pub fn run_grid(configs: &[CoreConfig], len: u64, threads: usize) -> Vec<Vec<SimReport>> {
    run_grid_full(configs, len, threads, false).reports
}

/// [`run_grid`] with a `MetricsSink` attached to every simulation: each
/// returned report carries `obs` latency histograms covering its
/// measured window.
///
/// The histograms are per-job and land in slots keyed by grid position,
/// so — like the plain reports — they are byte-identical at any thread
/// count (see `tests/parallel_determinism.rs`).
///
/// # Panics
///
/// Panics if a config is invalid or a worker thread panics.
pub fn run_grid_obs(configs: &[CoreConfig], len: u64, threads: usize) -> Vec<Vec<SimReport>> {
    run_grid_full(configs, len, threads, true).reports
}

/// The full-fat grid runner behind [`run_grid`] and [`run_grid_obs`]:
/// optionally instruments every simulation with a metrics sink
/// (`collect_obs`) and always returns per-job host telemetry. Warm-state
/// sharing follows `RFP_WARM_MODE` via a grid-local [`WarmPool`]; use
/// [`run_grid_pooled`] to share the pool (and its snapshots) across
/// several grids.
///
/// # Panics
///
/// Panics if a config is invalid or a worker thread panics.
pub fn run_grid_full(
    configs: &[CoreConfig],
    len: u64,
    threads: usize,
    collect_obs: bool,
) -> GridOutcome {
    run_grid_pooled(&WarmPool::from_env(len), configs, threads, collect_obs)
}

/// [`run_grid_full`] against a caller-owned [`WarmPool`] (which fixes the
/// measured length and the sharing mode). Jobs are claimed in
/// *workload-major* order — all configs of workload 0, then workload 1 —
/// so the jobs that share a snapshot run close together and the pool can
/// evict each workload's band as soon as its last job retires. Reports
/// still land in config-major grid positions, so output is byte-identical
/// to the unpooled engine at every thread count.
///
/// # Panics
///
/// Panics if a config is invalid or a worker thread panics.
pub fn run_grid_pooled(
    pool: &WarmPool,
    configs: &[CoreConfig],
    threads: usize,
    collect_obs: bool,
) -> GridOutcome {
    let suite = rfp_trace::suite();
    let n_workloads = suite.len();
    let n_configs = configs.len();
    let n_jobs = n_configs * n_workloads;
    if n_jobs == 0 {
        return GridOutcome {
            reports: configs.iter().map(|_| Vec::new()).collect(),
            telemetry: Vec::new(),
        };
    }
    let plans = plan_jobs(pool, configs);
    let threads = threads.clamp(1, n_jobs);
    let next = AtomicUsize::new(0);
    let remaining: Vec<AtomicUsize> = (0..n_workloads)
        .map(|_| AtomicUsize::new(n_configs))
        .collect();

    let per_worker: Vec<Vec<(SimReport, JobTelemetry)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let next = &next;
                let suite = &suite;
                let plans = &plans;
                let remaining = &remaining;
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let claim = next.fetch_add(1, Ordering::Relaxed);
                        if claim >= n_jobs {
                            break;
                        }
                        // Workload-major claim order; config-major grid
                        // position (what slot reduction and telemetry
                        // sorting key on).
                        let (wi, ci) = (claim / n_configs, claim % n_configs);
                        let job = ci * n_workloads + wi;
                        let t0 = Instant::now();
                        let lane = worker as u32 + 1;
                        let cell = || format!("{}|cfg{}", suite[wi].name, ci);
                        if let Some(tr) = pool.tracer() {
                            tr.instant(
                                "claim",
                                cell(),
                                "claimed",
                                vec![
                                    ("claim", claim as u64),
                                    ("queue_depth", (n_jobs - claim) as u64),
                                ],
                                lane,
                            );
                        }
                        let sim_start = pool.tracer().map(|tr| tr.now_nanos());
                        // Persistent-store fast path: a verified result
                        // entry replaces the whole simulation. On a miss
                        // the freshly simulated report is published so
                        // the next sweep (or process) hits.
                        let (report, warm, store_tag, s_read, s_written) = match pool.store() {
                            Some(s) => {
                                let key = store::result_key(
                                    pool.measured,
                                    pool.warmup,
                                    pool.sim,
                                    pool.mode,
                                    collect_obs,
                                    suite[wi].name,
                                    &configs[ci],
                                );
                                match s.get::<SimReport>(Tier::Result, &key) {
                                    Some((r, n)) => {
                                        if let Some(tr) = pool.tracer() {
                                            tr.instant(
                                                "store-get",
                                                format!("result|{}", cell()),
                                                "hit",
                                                vec![("bytes", n)],
                                                lane,
                                            );
                                        }
                                        (r, "store", "hit", n, 0)
                                    }
                                    None => {
                                        if let Some(tr) = pool.tracer() {
                                            tr.instant(
                                                "store-get",
                                                format!("result|{}", cell()),
                                                "miss",
                                                vec![],
                                                lane,
                                            );
                                        }
                                        let (r, warm) = pooled_job(
                                            pool,
                                            &configs[ci],
                                            &plans[ci],
                                            suite,
                                            wi,
                                            collect_obs,
                                        );
                                        let written = s.put(Tier::Result, &key, &r);
                                        if let Some(tr) = pool.tracer() {
                                            tr.instant(
                                                "store-put",
                                                format!("result|{}", cell()),
                                                "published",
                                                vec![("bytes", written)],
                                                lane,
                                            );
                                        }
                                        (r, warm, "miss", 0, written)
                                    }
                                }
                            }
                            None => {
                                let (r, warm) = pooled_job(
                                    pool,
                                    &configs[ci],
                                    &plans[ci],
                                    suite,
                                    wi,
                                    collect_obs,
                                );
                                (r, warm, "off", 0, 0)
                            }
                        };
                        if let (Some(tr), Some(s0)) = (pool.tracer(), sim_start) {
                            tr.record(
                                "simulate",
                                cell(),
                                warm,
                                vec![("obs", u64::from(collect_obs))],
                                lane,
                                s0,
                            );
                        }
                        if (pool.mode() != WarmMode::Off || pool.sim() == SimMode::Sample)
                            && remaining[wi].fetch_sub(1, Ordering::AcqRel) == 1
                        {
                            pool.evict_workload(wi);
                        }
                        done.push((
                            report,
                            JobTelemetry {
                                job,
                                config: ci,
                                workload: suite[wi].name,
                                worker,
                                queue_depth: n_jobs - claim,
                                wall_nanos: t0.elapsed().as_nanos() as u64,
                                warm,
                                store: store_tag,
                                store_bytes_read: s_read,
                                store_bytes_written: s_written,
                            },
                        ));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Order-stable reduction: each job index is produced exactly once.
    let reduce_start = pool.tracer().map(|tr| tr.now_nanos());
    let mut slots: Vec<Option<SimReport>> = vec![None; n_jobs];
    let mut telemetry = Vec::with_capacity(n_jobs);
    for (report, tel) in per_worker.into_iter().flatten() {
        debug_assert!(slots[tel.job].is_none(), "job {} produced twice", tel.job);
        slots[tel.job] = Some(report);
        telemetry.push(tel);
    }
    telemetry.sort_by_key(|t| t.job);
    let mut slots = slots.into_iter();
    let reports = configs
        .iter()
        .map(|_| {
            (&mut slots)
                .take(n_workloads)
                .map(|r| r.expect("every job ran"))
                .collect()
        })
        .collect();
    if let (Some(tr), Some(r0)) = (pool.tracer(), reduce_start) {
        tr.record(
            "reduce",
            "grid".to_string(),
            "ok",
            vec![
                ("jobs", n_jobs as u64),
                ("configs", n_configs as u64),
                ("workloads", n_workloads as u64),
            ],
            0,
            r0,
        );
        // Host-dependent schedule facts go to the quarantined timing
        // counters, never into span fields: worker count, claim-order
        // worker handoffs ("steals"), and summed job wall time.
        tr.timing_max("workers", threads as u64);
        tr.timing_counter(
            "wall_nanos",
            telemetry.iter().map(|t| t.wall_nanos).sum::<u64>(),
        );
        let mut by_claim: Vec<(usize, usize)> = telemetry
            .iter()
            .map(|t| (n_jobs - t.queue_depth, t.worker))
            .collect();
        by_claim.sort_unstable();
        let steals = by_claim.windows(2).filter(|w| w[0].1 != w[1].1).count() as u64;
        tr.timing_counter("steals", steals);
    }
    GridOutcome { reports, telemetry }
}

/// Schema version of the engine's JSONL side channels: the per-job
/// telemetry lines and the `warm_pool`/`store` summary blocks appended
/// to `--telemetry-out` streams. Bump whenever a field is added,
/// removed or reinterpreted.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// Renders job telemetry as JSONL (one object per line), ready for
/// `--telemetry-out` or ad-hoc analysis with `jq`. Workload names pass
/// through [`json_escape`], so names with quotes or backslashes stay
/// valid JSON.
pub fn telemetry_jsonl(telemetry: &[JobTelemetry]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for t in telemetry {
        writeln!(
            out,
            "{{\"schema\":{TELEMETRY_SCHEMA_VERSION},\
             \"job\":{},\"config\":{},\"workload\":\"{}\",\"worker\":{},\
             \"queue_depth\":{},\"wall_nanos\":{},\"warm\":\"{}\",\
             \"store\":\"{}\",\"store_bytes_read\":{},\"store_bytes_written\":{}}}",
            t.job,
            t.config,
            json_escape(t.workload),
            t.worker,
            t.queue_depth,
            t.wall_nanos,
            t.warm,
            t.store,
            t.store_bytes_read,
            t.store_bytes_written,
        )
        .expect("write to String");
    }
    out
}

/// Merges `sections` (top-level key → rendered JSON value) into the JSON
/// object stored at `path`, preserving any other top-level sections —
/// so `benches/simulator.rs` and `benches/warm_fork.rs` can each own
/// their slice of `BENCH_engine.json` without clobbering the other's.
///
/// The file is created as `{}`-rooted when missing. This is a
/// deliberately dumb splitter, not a JSON parser: it walks the top level
/// of the object tracking string/brace/bracket nesting, which is all the
/// bench files need.
///
/// # Errors
///
/// Propagates I/O errors; returns `InvalidData` when the existing file
/// is not a single top-level JSON object.
pub fn update_bench_json(
    path: &std::path::Path,
    sections: &[(&str, String)],
) -> std::io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::from("{}"),
        Err(e) => return Err(e),
    };
    let mut entries = split_top_level_object(&existing).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{} is not a single top-level JSON object", path.display()),
        )
    })?;
    for (key, value) in sections {
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value.clone(),
            None => entries.push((key.to_string(), value.clone())),
        }
    }
    let mut out = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("  \"{}\": {}{}\n", json_escape(key), value, sep));
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Splits the top level of a JSON object into `(key, raw value)` pairs.
/// Returns `None` when `text` isn't a single object.
fn split_top_level_object(text: &str) -> Option<Vec<(String, String)>> {
    let body = text.trim();
    let body = body.strip_prefix('{')?.strip_suffix('}')?;
    let mut entries = Vec::new();
    let mut chars = body.char_indices().peekable();
    loop {
        // Skip whitespace and the comma separating entries.
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        let Some(&(_, c)) = chars.peek() else {
            return Some(entries);
        };
        if c != '"' {
            return None;
        }
        chars.next();
        let mut key = String::new();
        let mut escaped = false;
        for (_, c) in chars.by_ref() {
            if escaped {
                // Keys in our bench files are plain identifiers; keep the
                // escape verbatim so round-tripping is lossless.
                key.push('\\');
                key.push(c);
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                break;
            } else {
                key.push(c);
            }
        }
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        if !matches!(chars.next(), Some((_, ':'))) {
            return None;
        }
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        // Consume the value: track nesting until a top-level ',' or end.
        let start = chars.peek()?.0;
        let mut end = body.len();
        let mut depth = 0i32;
        let mut in_str = false;
        let mut str_escaped = false;
        for (i, c) in chars.by_ref() {
            if in_str {
                if str_escaped {
                    str_escaped = false;
                } else if c == '\\' {
                    str_escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                ',' if depth == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        if depth > 0 || in_str {
            return None;
        }
        entries.push((key, body[start..end].trim_end().to_string()));
        if end == body.len() {
            return Some(entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_key_is_content_based() {
        let a = CoreConfig::tiger_lake();
        let b = CoreConfig::tiger_lake();
        assert_eq!(config_key(&a), config_key(&b));
        let mut c = CoreConfig::tiger_lake();
        c.rob_entries += 1;
        assert_ne!(config_key(&a), config_key(&c));
    }

    #[test]
    fn empty_grid_returns_empty_per_config() {
        let out = run_grid(&[], 1_000, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn grid_rows_follow_config_order() {
        let configs = [
            CoreConfig::tiger_lake(),
            CoreConfig::tiger_lake().with_rfp(),
        ];
        let out = run_grid(&configs, 400, 3);
        assert_eq!(out.len(), 2);
        let suite = rfp_trace::suite();
        for row in &out {
            assert_eq!(row.len(), suite.len());
            for (r, w) in row.iter().zip(&suite) {
                assert_eq!(r.workload, w.name);
            }
        }
        // The RFP row must actually have run the RFP config.
        assert!(out[1].iter().any(|r| r.stats.rfp_injected > 0));
        assert!(out[0].iter().all(|r| r.stats.rfp_injected == 0));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn full_grid_reports_one_telemetry_row_per_job() {
        let configs = [CoreConfig::tiger_lake()];
        let out = run_grid_full(&configs, 300, 3, false);
        let n = rfp_trace::suite().len();
        assert_eq!(out.telemetry.len(), n);
        for (i, t) in out.telemetry.iter().enumerate() {
            assert_eq!(t.job, i, "telemetry sorted by grid position");
            assert_eq!(t.config, 0);
            assert_eq!(t.queue_depth, n - i);
            assert!(t.worker < 3);
        }
        // Plain runs carry no obs payload.
        assert!(out.reports[0].iter().all(|r| r.obs.is_none()));
    }

    #[test]
    fn obs_grid_attaches_metrics_without_changing_stats() {
        let configs = [CoreConfig::tiger_lake().with_rfp()];
        let plain = run_grid(&configs, 400, 2);
        let obs = run_grid_obs(&configs, 400, 2);
        for (p, o) in plain[0].iter().zip(&obs[0]) {
            assert_eq!(
                p.stats, o.stats,
                "{}: probing changed the simulation",
                p.workload
            );
            let m = o.obs.as_ref().expect("obs attached");
            assert_eq!(
                m.rfp_complete_rel_issue.total(),
                o.stats.rfp_useful,
                "{}: one timeliness sample per useful prefetch",
                o.workload
            );
            let prof = o.profile.as_ref().expect("profile attached");
            let t = prof.totals();
            assert_eq!(
                t.useful(),
                o.stats.rfp_useful,
                "{}: per-site useful sums to the aggregate",
                o.workload
            );
            assert_eq!(
                t.injected, o.stats.rfp_injected,
                "{}: per-site injections sum to the aggregate",
                o.workload
            );
        }
    }

    #[test]
    fn telemetry_jsonl_is_line_per_job_json() {
        let rows = [JobTelemetry {
            job: 3,
            config: 1,
            workload: "w\"x",
            worker: 0,
            queue_depth: 7,
            wall_nanos: 42,
            warm: "fork",
            store: "hit",
            store_bytes_read: 9,
            store_bytes_written: 0,
        }];
        let s = telemetry_jsonl(&rows);
        assert_eq!(
            s,
            "{\"schema\":1,\"job\":3,\"config\":1,\"workload\":\"w\\\"x\",\"worker\":0,\
             \"queue_depth\":7,\"wall_nanos\":42,\"warm\":\"fork\",\
             \"store\":\"hit\",\"store_bytes_read\":9,\"store_bytes_written\":0}\n"
        );
    }

    #[test]
    fn warm_key_normalizes_inert_fields_only() {
        // Seed is dead state unless EPP is rolling SSBF false positives.
        let a = CoreConfig::tiger_lake();
        let mut b = a.clone();
        b.seed ^= 0xdead_beef;
        assert_eq!(warm_key(&a), warm_key(&b), "seed is inert without EPP");
        assert_ne!(config_key(&a), config_key(&b));

        let mut ea = a.clone();
        ea.vp = VpMode::Epp(Default::default());
        let mut eb = ea.clone();
        eb.seed ^= 0xdead_beef;
        assert_ne!(warm_key(&ea), warm_key(&eb), "seed is live under EPP");

        // A warmup-relevant field must change the key.
        let mut c = a.clone();
        c.mem.l1.size_bytes *= 2;
        assert_ne!(warm_key(&a), warm_key(&c), "L1 geometry shapes warmup");
    }

    #[test]
    fn warm_twin_collapses_measurement_features() {
        let base = CoreConfig::tiger_lake();
        let rfp = CoreConfig::tiger_lake().with_rfp();
        let mut dedicated = CoreConfig::tiger_lake().with_rfp();
        dedicated.ports.dedicated_rfp = 2;
        // All three warm up identically once RFP/VP/ports are stripped.
        let t = config_key(&warm_twin(&base));
        assert_eq!(t, config_key(&warm_twin(&rfp)));
        assert_eq!(t, config_key(&warm_twin(&dedicated)));
        // The baseline is its own twin.
        assert_eq!(t, warm_key(&base));
        assert_ne!(t, warm_key(&rfp));
        // Twins always validate (they must be runnable configs).
        warm_twin(&dedicated).validate().unwrap();
    }

    #[test]
    fn pooled_grid_matches_unpooled_at_any_mode() {
        // Two seed-variants of the same projection: the exact pool forks
        // one snapshot per workload; results must be byte-identical to
        // the pool-disabled engine.
        let mut seeded = CoreConfig::tiger_lake().with_rfp();
        seeded.seed ^= 0x5eed;
        let configs = [CoreConfig::tiger_lake().with_rfp(), seeded];
        let off = run_grid_pooled(&WarmPool::new(WarmMode::Off, 400), &configs, 2, false);
        let exact = run_grid_pooled(&WarmPool::new(WarmMode::Exact, 400), &configs, 2, false);
        for (o, e) in off
            .reports
            .iter()
            .flatten()
            .zip(exact.reports.iter().flatten())
        {
            assert_eq!(o.stats, e.stats, "{}: exact fork diverged", o.workload);
        }
        assert!(exact.telemetry.iter().all(|t| t.warm == "fork"));
        assert!(off.telemetry.iter().all(|t| t.warm == "off"));
    }

    #[test]
    fn pool_counts_hits_and_evicts_bands() {
        let configs = [
            CoreConfig::tiger_lake(),
            CoreConfig::tiger_lake(), // duplicate: shares every snapshot
        ];
        let pool = WarmPool::new(WarmMode::Exact, 300);
        run_grid_pooled(&pool, &configs, 2, false);
        let stats = pool.stats();
        let n = rfp_trace::suite().len();
        assert_eq!(stats.snapshot_misses, n as u64, "one build per workload");
        assert_eq!(stats.snapshot_hits, n as u64, "one fork per workload");
        assert_eq!(stats.live_snapshots, 0, "bands evicted as they finish");
        assert!(stats.trace_builds >= n as u64);
    }

    #[test]
    fn pinned_snapshots_survive_eviction_and_serve_next_grid() {
        let cfg = CoreConfig::tiger_lake().with_rfp();
        let pool = WarmPool::new(WarmMode::Exact, 300);
        pool.pin_config(&cfg);
        let plain = run_grid_pooled(&pool, std::slice::from_ref(&cfg), 2, false);
        let after_first = pool.stats();
        assert_eq!(after_first.live_snapshots, rfp_trace::suite().len());
        // The follow-up (obs) grid forks the pinned snapshots: all hits.
        let obs = run_grid_pooled(&pool, &[cfg], 2, true);
        let stats = pool.stats();
        assert_eq!(stats.snapshot_misses, after_first.snapshot_misses);
        assert!(stats.snapshot_hits >= rfp_trace::suite().len() as u64);
        for (p, o) in plain.reports[0].iter().zip(&obs.reports[0]) {
            assert_eq!(p.stats, o.stats, "{}: probed fork diverged", p.workload);
            assert!(o.obs.is_some());
        }
    }

    #[test]
    fn checkpoint_mode_transplants_and_keeps_baseline_exact() {
        let configs = [
            CoreConfig::tiger_lake(),
            CoreConfig::tiger_lake(), // shares the baseline snapshot exactly
            CoreConfig::tiger_lake().with_rfp(),
        ];
        // 1500 uops: long enough for a cold prefetch table (the twin
        // carries no PT) to train and inject during the measured window.
        let pool = WarmPool::new(WarmMode::Checkpoint, 1_500);
        let out = run_grid_pooled(&pool, &configs, 2, false);
        let reference = run_grid_pooled(
            &WarmPool::new(WarmMode::Off, 1_500),
            &configs[..1],
            2,
            false,
        );
        // Baseline rows fork exactly — byte-identical.
        for row in 0..2 {
            for (o, r) in out.reports[row].iter().zip(&reference.reports[0]) {
                assert_eq!(o.stats, r.stats, "{}: baseline must stay exact", o.workload);
            }
        }
        // The RFP row transplanted: plausible, RFP actually ran.
        assert!(out.reports[2].iter().any(|r| r.stats.rfp_injected > 0));
        let n = rfp_trace::suite().len() as u64;
        assert_eq!(pool.stats().transplants, n);
        assert!(out
            .telemetry
            .iter()
            .filter(|t| t.config == 2)
            .all(|t| t.warm == "transplant"));
    }

    #[test]
    fn unshared_configs_run_straight_through() {
        let configs = [
            CoreConfig::tiger_lake(),
            CoreConfig::tiger_lake().with_rfp(),
        ];
        let pool = WarmPool::new(WarmMode::Exact, 300);
        let out = run_grid_pooled(&pool, &configs, 2, false);
        assert!(out.telemetry.iter().all(|t| t.warm == "straight"));
        assert_eq!(pool.stats().snapshot_misses, 0);
    }

    #[test]
    fn sim_mode_parses_strictly() {
        assert_eq!("full".parse::<SimMode>().unwrap(), SimMode::Full);
        assert_eq!("".parse::<SimMode>().unwrap(), SimMode::Full);
        assert_eq!("sample".parse::<SimMode>().unwrap(), SimMode::Sample);
        assert!("quick".parse::<SimMode>().is_err());
    }

    #[test]
    fn sample_plan_partitions_the_interval_grid() {
        let w = &rfp_trace::suite()[0];
        let ct = w.compiled(
            7 * SAMPLE_INTERVAL_UOPS,
            SAMPLE_INTERVAL_UOPS,
            SAMPLE_INTERVAL_UOPS,
        );
        let n = ct.intervals().len();
        assert_eq!(n, 6);
        let plan = build_sample_plan(&ct);
        // Every interval lands in exactly one phase, reps are members.
        let mut covered: Vec<usize> = plan
            .phases
            .iter()
            .flat_map(|p| p.members.iter().copied())
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..n).collect::<Vec<_>>());
        for p in &plan.phases {
            assert!(p.members.contains(&p.rep));
        }
        assert_eq!(plan.tail, 0);
        assert_eq!(plan, build_sample_plan(&ct), "plan is deterministic");
        assert_eq!(
            plan.simulated_uops(SAMPLE_INTERVAL_UOPS),
            plan.phases.len() as u64 * SAMPLE_INTERVAL_UOPS
        );
    }

    #[test]
    fn sampled_grid_extrapolates_to_the_full_measured_length() {
        // Two full intervals plus a ragged tail: weights must cover the
        // whole measured region exactly — retired_uops is extrapolated,
        // not simulated, so an off-by-one-interval bug shows up here.
        let len = 2 * SAMPLE_INTERVAL_UOPS + 4096;
        let configs = [
            CoreConfig::tiger_lake(),
            CoreConfig::tiger_lake().with_rfp(),
        ];
        let pool = WarmPool::with_sim(WarmMode::Exact, SimMode::Sample, len);
        let out = run_grid_pooled(&pool, &configs, 2, false);
        for t in &out.telemetry {
            let expect = if t.config == 0 {
                "sample-fork" // the baseline is its own twin
            } else {
                "sample-transplant"
            };
            assert_eq!(t.warm, expect, "{}", t.workload);
        }
        for r in out.reports.iter().flatten() {
            assert_eq!(r.stats.retired_uops, len, "{}", r.workload);
            assert!(r.stats.cycles > 0, "{}", r.workload);
        }
        assert!(out.reports[1].iter().any(|r| r.stats.rfp_injected > 0));
    }

    #[test]
    fn sampled_degenerate_short_run_matches_full_fidelity() {
        // Under two full intervals the sampler cannot skip anything and
        // must fall back to a bit-exact full run of the compiled arena.
        let configs = [CoreConfig::tiger_lake().with_rfp()];
        let full = run_grid_pooled(&WarmPool::new(WarmMode::Off, 1_000), &configs, 2, false);
        let pool = WarmPool::with_sim(WarmMode::Exact, SimMode::Sample, 1_000);
        let samp = run_grid_pooled(&pool, &configs, 2, false);
        assert!(samp.telemetry.iter().all(|t| t.warm == "sample-full"));
        for (f, s) in full
            .reports
            .iter()
            .flatten()
            .zip(samp.reports.iter().flatten())
        {
            assert_eq!(f.stats, s.stats, "{}", f.workload);
        }
    }

    #[test]
    fn sampled_obs_grid_stays_consistent_with_its_stats() {
        let len = 3 * SAMPLE_INTERVAL_UOPS;
        let configs = [CoreConfig::tiger_lake().with_rfp()];
        let pool = WarmPool::with_sim(WarmMode::Exact, SimMode::Sample, len);
        let plain = run_grid_pooled(&pool, &configs, 2, false);
        let obs = run_grid_pooled(&pool, &configs, 2, true);
        for (p, o) in plain.reports[0].iter().zip(&obs.reports[0]) {
            assert_eq!(p.stats, o.stats, "{}: probing changed the run", p.workload);
            let m = o.obs.as_ref().expect("obs attached");
            assert_eq!(
                m.rfp_complete_rel_issue.total(),
                o.stats.rfp_useful,
                "{}: extrapolated timeliness tracks extrapolated useful",
                o.workload
            );
            let cpi = o.cpi.as_ref().expect("cpi attached");
            assert!(
                cpi.intervals_consistent(),
                "{}: epoch placement must conserve the stack",
                o.workload
            );
            let t = o.profile.as_ref().expect("profile attached").totals();
            assert_eq!(t.useful(), o.stats.rfp_useful, "{}", o.workload);
            assert_eq!(t.injected, o.stats.rfp_injected, "{}", o.workload);
        }
    }

    #[test]
    fn update_bench_json_preserves_other_sections() {
        let dir = std::env::temp_dir().join(format!("rfp_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);
        update_bench_json(&path, &[("alpha", "{\n    \"x\": [1, 2]\n  }".into())]).unwrap();
        update_bench_json(&path, &[("beta", "3.5".into())]).unwrap();
        update_bench_json(&path, &[("alpha", "\"s,{}\"".into())]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let entries = split_top_level_object(&text).unwrap();
        assert_eq!(
            entries,
            vec![
                ("alpha".to_string(), "\"s,{}\"".to_string()),
                ("beta".to_string(), "3.5".to_string()),
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn split_top_level_rejects_non_objects() {
        assert!(split_top_level_object("[1, 2]").is_none());
        assert!(split_top_level_object("{\"a\": {").is_none());
        assert_eq!(split_top_level_object("{}").unwrap(), vec![]);
    }
}
