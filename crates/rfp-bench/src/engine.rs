//! Work-stealing parallel experiment engine.
//!
//! Every experiment ultimately needs the same thing: the full workload
//! suite simulated under one or more [`CoreConfig`]s. The engine
//! flattens all `(config, workload)` pairs into one global job grid and
//! lets a pool of scoped threads *steal* jobs off a shared atomic index —
//! so a long-running workload never leaves the rest of a static chunk's
//! cores idle, and multiple configurations fill the machine together
//! instead of running one after another.
//!
//! Results are reduced into per-job slots indexed by grid position, so
//! the output order is identical no matter how many threads ran or how
//! the jobs interleaved. Each simulation is seeded and single-threaded,
//! which makes the whole grid bit-deterministic (see
//! `tests/parallel_determinism.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};

use rfp_core::{simulate_workload, CoreConfig};
use rfp_stats::SimReport;

/// Worker-thread count to use when the caller doesn't override it:
/// the `RFP_THREADS` environment variable if set, otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RFP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Content hash of a configuration (FNV-1a over its `Debug` rendering).
///
/// Two configs that would simulate identically hash identically, so a
/// cache keyed by this value dedupes the same configuration reached via
/// different experiments — `fig10`'s RFP run and `fig13`'s are one run.
///
/// # Examples
///
/// ```
/// use rfp_bench::config_key;
/// use rfp_core::CoreConfig;
///
/// let a = config_key(&CoreConfig::tiger_lake());
/// assert_eq!(a, config_key(&CoreConfig::tiger_lake()));
/// assert_ne!(a, config_key(&CoreConfig::tiger_lake().with_rfp()));
/// ```
pub fn config_key(cfg: &CoreConfig) -> u64 {
    let repr = format!("{cfg:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in repr.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Simulates the whole workload suite under every config in `configs`
/// on `threads` work-stealing workers, returning one suite-ordered
/// report vector per config (in `configs` order).
///
/// The job grid is `(config, workload)` pairs; a shared atomic index
/// hands the next job to whichever worker frees up first. Output is
/// deterministic and thread-count-independent: jobs land in slots keyed
/// by grid position and each simulation is internally seeded.
///
/// # Panics
///
/// Panics if a config is invalid or a worker thread panics.
pub fn run_grid(configs: &[CoreConfig], len: u64, threads: usize) -> Vec<Vec<SimReport>> {
    let suite = rfp_trace::suite();
    let n_workloads = suite.len();
    let n_jobs = configs.len() * n_workloads;
    if n_jobs == 0 {
        return configs.iter().map(|_| Vec::new()).collect();
    }
    let threads = threads.clamp(1, n_jobs);
    let next = AtomicUsize::new(0);

    let per_worker: Vec<Vec<(usize, SimReport)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let suite = &suite;
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let job = next.fetch_add(1, Ordering::Relaxed);
                        if job >= n_jobs {
                            break;
                        }
                        let (ci, wi) = (job / n_workloads, job % n_workloads);
                        let report =
                            simulate_workload(&configs[ci], &suite[wi], len).expect("valid config");
                        done.push((job, report));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Order-stable reduction: each job index is produced exactly once.
    let mut slots: Vec<Option<SimReport>> = vec![None; n_jobs];
    for (job, report) in per_worker.into_iter().flatten() {
        debug_assert!(slots[job].is_none(), "job {job} produced twice");
        slots[job] = Some(report);
    }
    let mut slots = slots.into_iter();
    configs
        .iter()
        .map(|_| {
            (&mut slots)
                .take(n_workloads)
                .map(|r| r.expect("every job ran"))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_key_is_content_based() {
        let a = CoreConfig::tiger_lake();
        let b = CoreConfig::tiger_lake();
        assert_eq!(config_key(&a), config_key(&b));
        let mut c = CoreConfig::tiger_lake();
        c.rob_entries += 1;
        assert_ne!(config_key(&a), config_key(&c));
    }

    #[test]
    fn empty_grid_returns_empty_per_config() {
        let out = run_grid(&[], 1_000, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn grid_rows_follow_config_order() {
        let configs = [
            CoreConfig::tiger_lake(),
            CoreConfig::tiger_lake().with_rfp(),
        ];
        let out = run_grid(&configs, 400, 3);
        assert_eq!(out.len(), 2);
        let suite = rfp_trace::suite();
        for row in &out {
            assert_eq!(row.len(), suite.len());
            for (r, w) in row.iter().zip(&suite) {
                assert_eq!(r.workload, w.name);
            }
        }
        // The RFP row must actually have run the RFP config.
        assert!(out[1].iter().any(|r| r.stats.rfp_injected > 0));
        assert!(out[0].iter().all(|r| r.stats.rfp_injected == 0));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
