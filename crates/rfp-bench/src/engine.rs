//! Work-stealing parallel experiment engine.
//!
//! Every experiment ultimately needs the same thing: the full workload
//! suite simulated under one or more [`CoreConfig`]s. The engine
//! flattens all `(config, workload)` pairs into one global job grid and
//! lets a pool of scoped threads *steal* jobs off a shared atomic index —
//! so a long-running workload never leaves the rest of a static chunk's
//! cores idle, and multiple configurations fill the machine together
//! instead of running one after another.
//!
//! Results are reduced into per-job slots indexed by grid position, so
//! the output order is identical no matter how many threads ran or how
//! the jobs interleaved. Each simulation is seeded and single-threaded,
//! which makes the whole grid bit-deterministic (see
//! `tests/parallel_determinism.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use rfp_core::{simulate_workload, simulate_workload_probed, CoreConfig};
use rfp_obs::MetricsSink;
use rfp_stats::SimReport;
use rfp_types::json_escape;

/// Worker-thread count to use when the caller doesn't override it:
/// the `RFP_THREADS` environment variable if set, otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RFP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Content hash of a configuration (FNV-1a over its `Debug` rendering).
///
/// Two configs that would simulate identically hash identically, so a
/// cache keyed by this value dedupes the same configuration reached via
/// different experiments — `fig10`'s RFP run and `fig13`'s are one run.
///
/// # Examples
///
/// ```
/// use rfp_bench::config_key;
/// use rfp_core::CoreConfig;
///
/// let a = config_key(&CoreConfig::tiger_lake());
/// assert_eq!(a, config_key(&CoreConfig::tiger_lake()));
/// assert_ne!(a, config_key(&CoreConfig::tiger_lake().with_rfp()));
/// ```
pub fn config_key(cfg: &CoreConfig) -> u64 {
    let repr = format!("{cfg:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in repr.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Per-job scheduling and wall-time telemetry from one grid run.
///
/// Everything here describes the *host-side* execution of a job —
/// which worker ran it, how deep the unclaimed queue was when it was
/// grabbed, how long it took — and is therefore host- and
/// schedule-dependent. It is deliberately kept out of [`SimReport`]
/// so the simulated results stay byte-deterministic; telemetry is a
/// side channel for engine tuning (see `--telemetry-out`).
#[derive(Debug, Clone)]
pub struct JobTelemetry {
    /// Grid position (`config_index * n_workloads + workload_index`).
    pub job: usize,
    /// Index of the configuration within the grid's config list.
    pub config: usize,
    /// Workload name.
    pub workload: &'static str,
    /// Worker thread (0-based) that claimed the job.
    pub worker: usize,
    /// Jobs not yet claimed at grab time, this one included — a proxy
    /// for how much stealing headroom remained.
    pub queue_depth: usize,
    /// Host wall time the simulation took.
    pub wall_nanos: u64,
}

/// Everything one work-stealing grid run produces: the suite-ordered
/// reports (as [`run_grid`]) plus per-job telemetry sorted by grid
/// position.
#[derive(Debug)]
pub struct GridOutcome {
    /// One suite-ordered report vector per config, in config order.
    pub reports: Vec<Vec<SimReport>>,
    /// Per-job host telemetry, sorted by grid position.
    pub telemetry: Vec<JobTelemetry>,
}

/// Simulates the whole workload suite under every config in `configs`
/// on `threads` work-stealing workers, returning one suite-ordered
/// report vector per config (in `configs` order).
///
/// The job grid is `(config, workload)` pairs; a shared atomic index
/// hands the next job to whichever worker frees up first. Output is
/// deterministic and thread-count-independent: jobs land in slots keyed
/// by grid position and each simulation is internally seeded.
///
/// # Panics
///
/// Panics if a config is invalid or a worker thread panics.
pub fn run_grid(configs: &[CoreConfig], len: u64, threads: usize) -> Vec<Vec<SimReport>> {
    run_grid_full(configs, len, threads, false).reports
}

/// [`run_grid`] with a `MetricsSink` attached to every simulation: each
/// returned report carries `obs` latency histograms covering its
/// measured window.
///
/// The histograms are per-job and land in slots keyed by grid position,
/// so — like the plain reports — they are byte-identical at any thread
/// count (see `tests/parallel_determinism.rs`).
///
/// # Panics
///
/// Panics if a config is invalid or a worker thread panics.
pub fn run_grid_obs(configs: &[CoreConfig], len: u64, threads: usize) -> Vec<Vec<SimReport>> {
    run_grid_full(configs, len, threads, true).reports
}

/// The full-fat grid runner behind [`run_grid`] and [`run_grid_obs`]:
/// optionally instruments every simulation with a metrics sink
/// (`collect_obs`) and always returns per-job host telemetry.
///
/// # Panics
///
/// Panics if a config is invalid or a worker thread panics.
pub fn run_grid_full(
    configs: &[CoreConfig],
    len: u64,
    threads: usize,
    collect_obs: bool,
) -> GridOutcome {
    let suite = rfp_trace::suite();
    let n_workloads = suite.len();
    let n_jobs = configs.len() * n_workloads;
    if n_jobs == 0 {
        return GridOutcome {
            reports: configs.iter().map(|_| Vec::new()).collect(),
            telemetry: Vec::new(),
        };
    }
    let threads = threads.clamp(1, n_jobs);
    let next = AtomicUsize::new(0);

    let per_worker: Vec<Vec<(SimReport, JobTelemetry)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let next = &next;
                let suite = &suite;
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let job = next.fetch_add(1, Ordering::Relaxed);
                        if job >= n_jobs {
                            break;
                        }
                        let (ci, wi) = (job / n_workloads, job % n_workloads);
                        let t0 = Instant::now();
                        let report = if collect_obs {
                            let (mut report, sink) = simulate_workload_probed(
                                &configs[ci],
                                &suite[wi],
                                len,
                                MetricsSink::new(),
                            )
                            .expect("valid config");
                            report.obs = Some(Box::new(sink.into_metrics()));
                            report
                        } else {
                            simulate_workload(&configs[ci], &suite[wi], len).expect("valid config")
                        };
                        done.push((
                            report,
                            JobTelemetry {
                                job,
                                config: ci,
                                workload: suite[wi].name,
                                worker,
                                queue_depth: n_jobs - job,
                                wall_nanos: t0.elapsed().as_nanos() as u64,
                            },
                        ));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Order-stable reduction: each job index is produced exactly once.
    let mut slots: Vec<Option<SimReport>> = vec![None; n_jobs];
    let mut telemetry = Vec::with_capacity(n_jobs);
    for (report, tel) in per_worker.into_iter().flatten() {
        debug_assert!(slots[tel.job].is_none(), "job {} produced twice", tel.job);
        slots[tel.job] = Some(report);
        telemetry.push(tel);
    }
    telemetry.sort_by_key(|t| t.job);
    let mut slots = slots.into_iter();
    let reports = configs
        .iter()
        .map(|_| {
            (&mut slots)
                .take(n_workloads)
                .map(|r| r.expect("every job ran"))
                .collect()
        })
        .collect();
    GridOutcome { reports, telemetry }
}

/// Renders job telemetry as JSONL (one object per line), ready for
/// `--telemetry-out` or ad-hoc analysis with `jq`.
pub fn telemetry_jsonl(telemetry: &[JobTelemetry]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for t in telemetry {
        writeln!(
            out,
            "{{\"job\":{},\"config\":{},\"workload\":\"{}\",\"worker\":{},\
             \"queue_depth\":{},\"wall_nanos\":{}}}",
            t.job,
            t.config,
            json_escape(t.workload),
            t.worker,
            t.queue_depth,
            t.wall_nanos
        )
        .expect("write to String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_key_is_content_based() {
        let a = CoreConfig::tiger_lake();
        let b = CoreConfig::tiger_lake();
        assert_eq!(config_key(&a), config_key(&b));
        let mut c = CoreConfig::tiger_lake();
        c.rob_entries += 1;
        assert_ne!(config_key(&a), config_key(&c));
    }

    #[test]
    fn empty_grid_returns_empty_per_config() {
        let out = run_grid(&[], 1_000, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn grid_rows_follow_config_order() {
        let configs = [
            CoreConfig::tiger_lake(),
            CoreConfig::tiger_lake().with_rfp(),
        ];
        let out = run_grid(&configs, 400, 3);
        assert_eq!(out.len(), 2);
        let suite = rfp_trace::suite();
        for row in &out {
            assert_eq!(row.len(), suite.len());
            for (r, w) in row.iter().zip(&suite) {
                assert_eq!(r.workload, w.name);
            }
        }
        // The RFP row must actually have run the RFP config.
        assert!(out[1].iter().any(|r| r.stats.rfp_injected > 0));
        assert!(out[0].iter().all(|r| r.stats.rfp_injected == 0));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn full_grid_reports_one_telemetry_row_per_job() {
        let configs = [CoreConfig::tiger_lake()];
        let out = run_grid_full(&configs, 300, 3, false);
        let n = rfp_trace::suite().len();
        assert_eq!(out.telemetry.len(), n);
        for (i, t) in out.telemetry.iter().enumerate() {
            assert_eq!(t.job, i, "telemetry sorted by grid position");
            assert_eq!(t.config, 0);
            assert_eq!(t.queue_depth, n - i);
            assert!(t.worker < 3);
        }
        // Plain runs carry no obs payload.
        assert!(out.reports[0].iter().all(|r| r.obs.is_none()));
    }

    #[test]
    fn obs_grid_attaches_metrics_without_changing_stats() {
        let configs = [CoreConfig::tiger_lake().with_rfp()];
        let plain = run_grid(&configs, 400, 2);
        let obs = run_grid_obs(&configs, 400, 2);
        for (p, o) in plain[0].iter().zip(&obs[0]) {
            assert_eq!(
                p.stats, o.stats,
                "{}: probing changed the simulation",
                p.workload
            );
            let m = o.obs.as_ref().expect("obs attached");
            assert_eq!(
                m.rfp_complete_rel_issue.total(),
                o.stats.rfp_useful,
                "{}: one timeliness sample per useful prefetch",
                o.workload
            );
        }
    }

    #[test]
    fn telemetry_jsonl_is_line_per_job_json() {
        let rows = [JobTelemetry {
            job: 3,
            config: 1,
            workload: "w\"x",
            worker: 0,
            queue_depth: 7,
            wall_nanos: 42,
        }];
        let s = telemetry_jsonl(&rows);
        assert_eq!(
            s,
            "{\"job\":3,\"config\":1,\"workload\":\"w\\\"x\",\"worker\":0,\
             \"queue_depth\":7,\"wall_nanos\":42}\n"
        );
    }
}
