//! Prints the headline calibration aggregates against the paper's values —
//! the quickest way to see whether a change to the workload generator or
//! the core model drifted the reproduction.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin calibrate [len] [--threads N]
//! ```
//!
//! Observability outputs (side files; stdout is unchanged):
//! `--metrics-out FILE` writes the RFP row's per-workload latency
//! histograms (JSON), `--profile-out FILE` its per-load-PC attribution
//! profile (JSON), `--trace-out DIR` (with `--trace-workload W`,
//! default `spec17_mcf`) writes a Perfetto pipeline trace,
//! `--telemetry-out FILE` writes per-job engine telemetry (JSONL), and
//! `--engine-trace-out FILE` (or `RFP_ENGINE_TRACE=<path>`) writes the
//! engine's own span trace (Chrome JSON with an `engineMetrics`
//! summary).
//!
//! Env: `RFP_TRACE_LEN=<uops>`, `RFP_THREADS=<n>`,
//! `RFP_WARM_MODE=off|exact|checkpoint`, `RFP_SIM_MODE=full|sample`
//! (phase-sampled simulation — approximate, see `experiments
//! sampling-error`) and `RFP_ENGINE_TRACE=<path>`. All are strictly
//! parsed: a malformed value exits 2 instead of silently falling back
//! to the default.

use std::sync::Arc;

use rfp_bench::{
    default_threads, engine_trace_from_env, metrics_reports_json, profile_reports_json,
    run_grid_pooled, telemetry_jsonl, trace_workload_json, write_engine_trace, EngineTracePath,
    WarmPool,
};
use rfp_core::{CoreConfig, OracleMode};
use rfp_obs::EngineTracer;
use rfp_stats::{geomean_speedup, mean_frac};

/// Removes `--flag value` from `args`, returning the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    // Validate `RFP_INSPECT_WINDOWS` even though this bin never inspects:
    // a malformed value exits 2 here exactly as it would in
    // `experiments`, failing a typo'd pipeline at its first command.
    let _ = rfp_bench::inspect_windows_from_env();
    // Same strictness for `RFP_STORE` (this bin's grids do use it): an
    // empty or unwritable store path exits 2 before any simulation.
    let _ = rfp_bench::ExpStore::from_env();
    // `RFP_HISTORY` (the run-history ledger, written by `experiments`)
    // gets the same treatment.
    let _ = rfp_bench::history_store_from_env();
    // And for `RFP_ENGINE_TRACE` — even when `--engine-trace-out`
    // overrides it, a malformed env value must fail here.
    let _ = engine_trace_from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = default_threads();
    if let Some(v) = take_flag(&mut args, "--threads") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => threads = n,
            _ => {
                eprintln!("--threads needs a positive integer, got {v}");
                std::process::exit(2);
            }
        }
    }
    let trace_out = take_flag(&mut args, "--trace-out");
    let trace_workload =
        take_flag(&mut args, "--trace-workload").unwrap_or_else(|| "spec17_mcf".to_string());
    let metrics_out = take_flag(&mut args, "--metrics-out");
    let profile_out = take_flag(&mut args, "--profile-out");
    let telemetry_out = take_flag(&mut args, "--telemetry-out");
    // `--engine-trace-out FILE` overrides `RFP_ENGINE_TRACE`; both are
    // validated strictly (empty value exits 2).
    let engine_trace_out = match take_flag(&mut args, "--engine-trace-out") {
        Some(v) => {
            let EngineTracePath(p) = v.parse().unwrap_or_else(|e| {
                eprintln!("error: --engine-trace-out {v:?} is not a valid value: {e}");
                std::process::exit(2);
            });
            Some(p)
        }
        None => engine_trace_from_env(),
    };
    // Positional length, strictly parsed — a typo like `100_000` must not
    // silently fall back to the default. `RFP_TRACE_LEN` (also strict)
    // applies when no positional length is given.
    let len: u64 = match args.first() {
        Some(s) => s.parse().unwrap_or_else(|e| {
            eprintln!("error: trace length {s:?} is not a valid value: {e}");
            std::process::exit(2);
        }),
        None => rfp_bench::trace_len_from_env(100_000),
    };
    let t0 = std::time::Instant::now();
    // All four configurations go into one work-stealing grid so the
    // slowest (oracle) rows don't serialise behind the cheap baseline.
    // Metrics sinks are attached only when histograms were asked for —
    // the aggregates printed below come from the same counters either way.
    let rfp_cfg = CoreConfig::tiger_lake().with_rfp();
    let configs = [
        CoreConfig::tiger_lake(),
        rfp_cfg.clone(),
        CoreConfig::tiger_lake().with_oracle(OracleMode::L1ToRf),
        CoreConfig::tiger_lake().with_oracle(OracleMode::MemToLlc),
    ];
    // Same semantics as `run_grid_full`, but against an explicit pool so
    // the engine self-tracer can be armed when a trace was requested.
    let tracer = engine_trace_out
        .as_ref()
        .map(|_| Arc::new(EngineTracer::new()));
    let pool = WarmPool::from_env(len).with_tracer(tracer.clone());
    let outcome = run_grid_pooled(
        &pool,
        &configs,
        threads,
        metrics_out.is_some() || profile_out.is_some(),
    );
    let mut rows = outcome.reports.into_iter();
    let (base, rfp, o_l1, o_mem) = (
        rows.next().expect("base row"),
        rows.next().expect("rfp row"),
        rows.next().expect("oracle L1 row"),
        rows.next().expect("oracle mem row"),
    );
    eprintln!(
        "4 configs x {} workloads on {} thread(s) in {:.1}s",
        base.len(),
        threads,
        t0.elapsed().as_secs_f32()
    );

    // I/O failures on side outputs are usage errors (bad path, full
    // disk), not bugs — report the file and exit 2 instead of panicking.
    let write_or_die = |path: &str, contents: &str| {
        std::fs::write(path, contents).unwrap_or_else(|e| {
            eprintln!("error: write {path}: {e}");
            std::process::exit(2);
        });
    };
    if let Some(file) = &metrics_out {
        write_or_die(file, &metrics_reports_json(&rfp_cfg, len, &rfp));
        eprintln!("wrote metrics histograms to {file}");
    }
    if let Some(file) = &profile_out {
        write_or_die(file, &profile_reports_json(&rfp_cfg, len, &rfp));
        eprintln!("wrote per-load-PC profile to {file}");
    }
    if let Some(dir) = &trace_out {
        let w = rfp_trace::by_name(&trace_workload).unwrap_or_else(|| {
            eprintln!("unknown --trace-workload '{trace_workload}'");
            std::process::exit(2);
        });
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("error: mkdir {dir}: {e}");
            std::process::exit(2);
        });
        let path = format!("{dir}/{}.trace.json", w.name);
        write_or_die(&path, &trace_workload_json(&rfp_cfg, &w, len));
        eprintln!("wrote pipeline trace to {path} (load in Perfetto or chrome://tracing)");
    }
    if let Some(file) = &telemetry_out {
        write_or_die(file, &telemetry_jsonl(&outcome.telemetry));
        eprintln!("wrote {} telemetry rows to {file}", outcome.telemetry.len());
    }
    if let (Some(path), Some(tracer)) = (&engine_trace_out, &tracer) {
        let pool_stats = pool.stats();
        let store_stats = pool.store().map(|s| s.stats());
        write_engine_trace(
            path,
            tracer,
            &outcome.telemetry,
            &pool_stats,
            store_stats.as_ref(),
        );
        eprintln!(
            "wrote engine trace ({} spans) to {} (load in Perfetto or chrome://tracing)",
            tracer.spans().len(),
            path.display()
        );
    }

    let gs = |n: &[rfp_stats::SimReport]| geomean_speedup(&base, n).unwrap_or(1.0);
    println!(
        "mean L1 hit      = {:.3} (paper 0.928)",
        mean_frac(&base, |r| r.l1_hit_frac())
    );
    println!(
        "mean ready@alloc = {:.3} (paper 0.37)",
        mean_frac(&base, |r| r.ready_at_alloc_frac())
    );
    println!(
        "mean base IPC    = {:.3}",
        base.iter().map(|r| r.ipc()).sum::<f64>() / base.len().max(1) as f64
    );
    println!("oracle L1->RF    = {:.4} (paper 1.090)", gs(&o_l1));
    println!("oracle Mem->LLC  = {:.4} (paper 1.133)", gs(&o_mem));
    println!("RFP speedup      = {:.4} (paper 1.031)", gs(&rfp));
    println!(
        "RFP injected     = {:.3} (paper 0.72)",
        mean_frac(&rfp, |r| r.injected_frac())
    );
    println!(
        "RFP executed     = {:.3} (paper 0.48)",
        mean_frac(&rfp, |r| r.executed_frac())
    );
    println!(
        "RFP coverage     = {:.3} (paper 0.434)",
        mean_frac(&rfp, |r| r.coverage())
    );
    println!(
        "RFP wrong        = {:.3} (paper 0.05)",
        mean_frac(&rfp, |r| r.wrong_frac())
    );
    println!(
        "RFP fully hidden = {:.3} (paper 0.342)",
        mean_frac(&rfp, |r| r.fully_hidden_frac())
    );
}
