//! Prints the headline calibration aggregates against the paper's values —
//! the quickest way to see whether a change to the workload generator or
//! the core model drifted the reproduction.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin calibrate [len] [--threads N]
//! ```

use rfp_bench::{default_threads, run_grid};
use rfp_core::{CoreConfig, OracleMode};
use rfp_stats::{geomean_speedup, mean_frac};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = default_threads();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        if i + 1 >= args.len() {
            eprintln!("--threads needs a value");
            std::process::exit(2);
        }
        match args[i + 1].parse::<usize>() {
            Ok(n) if n >= 1 => threads = n,
            _ => {
                eprintln!("--threads needs a positive integer, got {}", args[i + 1]);
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    let len: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let t0 = std::time::Instant::now();
    // All four configurations go into one work-stealing grid so the
    // slowest (oracle) rows don't serialise behind the cheap baseline.
    let configs = [
        CoreConfig::tiger_lake(),
        CoreConfig::tiger_lake().with_rfp(),
        CoreConfig::tiger_lake().with_oracle(OracleMode::L1ToRf),
        CoreConfig::tiger_lake().with_oracle(OracleMode::MemToLlc),
    ];
    let mut rows = run_grid(&configs, len, threads).into_iter();
    let (base, rfp, o_l1, o_mem) = (
        rows.next().expect("base row"),
        rows.next().expect("rfp row"),
        rows.next().expect("oracle L1 row"),
        rows.next().expect("oracle mem row"),
    );
    eprintln!(
        "4 configs x {} workloads on {} thread(s) in {:.1}s",
        base.len(),
        threads,
        t0.elapsed().as_secs_f32()
    );

    let gs = |n: &[rfp_stats::SimReport]| geomean_speedup(&base, n).unwrap_or(1.0);
    println!(
        "mean L1 hit      = {:.3} (paper 0.928)",
        mean_frac(&base, |r| r.l1_hit_frac())
    );
    println!(
        "mean ready@alloc = {:.3} (paper 0.37)",
        mean_frac(&base, |r| r.ready_at_alloc_frac())
    );
    println!(
        "mean base IPC    = {:.3}",
        base.iter().map(|r| r.ipc()).sum::<f64>() / base.len() as f64
    );
    println!("oracle L1->RF    = {:.4} (paper 1.090)", gs(&o_l1));
    println!("oracle Mem->LLC  = {:.4} (paper 1.133)", gs(&o_mem));
    println!("RFP speedup      = {:.4} (paper 1.031)", gs(&rfp));
    println!(
        "RFP injected     = {:.3} (paper 0.72)",
        mean_frac(&rfp, |r| r.injected_frac())
    );
    println!(
        "RFP executed     = {:.3} (paper 0.48)",
        mean_frac(&rfp, |r| r.executed_frac())
    );
    println!(
        "RFP coverage     = {:.3} (paper 0.434)",
        mean_frac(&rfp, |r| r.coverage())
    );
    println!(
        "RFP wrong        = {:.3} (paper 0.05)",
        mean_frac(&rfp, |r| r.wrong_frac())
    );
    println!(
        "RFP fully hidden = {:.3} (paper 0.342)",
        mean_frac(&rfp, |r| r.fully_hidden_frac())
    );
}
