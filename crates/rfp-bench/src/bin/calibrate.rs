//! Prints the headline calibration aggregates against the paper's values —
//! the quickest way to see whether a change to the workload generator or
//! the core model drifted the reproduction.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin calibrate [len]
//! ```

use rfp_bench::run_suite;
use rfp_core::{CoreConfig, OracleMode};
use rfp_stats::{geomean_speedup, mean_frac};

fn main() {
    let len: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let t0 = std::time::Instant::now();
    let base = run_suite(&CoreConfig::tiger_lake(), len);
    let rfp = run_suite(&CoreConfig::tiger_lake().with_rfp(), len);
    let o_l1 = run_suite(&CoreConfig::tiger_lake().with_oracle(OracleMode::L1ToRf), len);
    let o_mem = run_suite(&CoreConfig::tiger_lake().with_oracle(OracleMode::MemToLlc), len);
    eprintln!("4 configs x 65 workloads in {:.1}s", t0.elapsed().as_secs_f32());

    let gs = |n: &[rfp_stats::SimReport]| geomean_speedup(&base, n).unwrap_or(1.0);
    println!("mean L1 hit      = {:.3} (paper 0.928)", mean_frac(&base, |r| r.l1_hit_frac()));
    println!("mean ready@alloc = {:.3} (paper 0.37)", mean_frac(&base, |r| r.ready_at_alloc_frac()));
    println!("mean base IPC    = {:.3}", base.iter().map(|r| r.ipc()).sum::<f64>() / base.len() as f64);
    println!("oracle L1->RF    = {:.4} (paper 1.090)", gs(&o_l1));
    println!("oracle Mem->LLC  = {:.4} (paper 1.133)", gs(&o_mem));
    println!("RFP speedup      = {:.4} (paper 1.031)", gs(&rfp));
    println!("RFP injected     = {:.3} (paper 0.72)", mean_frac(&rfp, |r| r.injected_frac()));
    println!("RFP executed     = {:.3} (paper 0.48)", mean_frac(&rfp, |r| r.executed_frac()));
    println!("RFP coverage     = {:.3} (paper 0.434)", mean_frac(&rfp, |r| r.coverage()));
    println!("RFP wrong        = {:.3} (paper 0.05)", mean_frac(&rfp, |r| r.wrong_frac()));
    println!("RFP fully hidden = {:.3} (paper 0.342)", mean_frac(&rfp, |r| r.fully_hidden_frac()));
}
