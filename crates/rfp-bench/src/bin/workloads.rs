//! Prints the composition of the 65-workload synthetic suite: static
//! program sizes, memory-pattern mixes and working-set classes — the
//! knobs that calibrate the reproduction (see DESIGN.md §8).
//!
//! ```text
//! cargo run --release -p rfp-bench --bin workloads [name]
//! ```
//!
//! With a workload name, `--trace-out DIR` additionally simulates it
//! under the RFP configuration (`RFP_TRACE_LEN` micro-ops, default
//! 120000) and writes a Perfetto/`chrome://tracing` pipeline +
//! prefetch-lifetime trace to `DIR/<name>.trace.json`; `--metrics-out
//! FILE` writes its latency histograms as JSON and `--profile-out FILE`
//! its per-load-PC attribution profile. The stdout description is
//! unchanged.
//!
//! Env (strictly parsed, malformed values exit 2): `RFP_TRACE_LEN=<uops>`,
//! `RFP_SIM_MODE=full|sample` and `RFP_ENGINE_TRACE=<path>`. The
//! single-workload observability path here is always full-fidelity and
//! runs no grid, but a malformed value still fails fast so scripts that
//! export one for a whole pipeline can't half work.

use rfp_stats::TextTable;
use rfp_trace::{AddrPattern, StaticKind, WorkingSetClass, Workload};

fn pattern_label(p: &AddrPattern) -> &'static str {
    match p {
        AddrPattern::Stride { .. } => "stride",
        AddrPattern::PhasedStride { .. } => "phased",
        AddrPattern::Pattern2D { .. } => "2d",
        AddrPattern::Constant => "const",
        AddrPattern::Chase => "chase",
        AddrPattern::Gather => "gather",
    }
}

fn ws_label(ws: WorkingSetClass) -> &'static str {
    match ws {
        WorkingSetClass::L1 => "L1",
        WorkingSetClass::L2 => "L2",
        WorkingSetClass::Llc => "LLC",
        WorkingSetClass::Dram => "DRAM",
    }
}

fn describe(w: &Workload) {
    let prog = w.program();
    println!(
        "{} ({}) — {} static uops, {} loads, {} stores, {} patterns",
        w.name,
        w.category.label(),
        prog.insts.len(),
        prog.static_loads(),
        prog.static_stores(),
        prog.patterns.len()
    );
    let mut by: std::collections::BTreeMap<(&str, &str), usize> = Default::default();
    for p in &prog.patterns {
        *by.entry((ws_label(p.ws), pattern_label(&p.addr)))
            .or_default() += 1;
    }
    for ((ws, pat), n) in by {
        println!("  {n:>3} x {ws:>4} {pat}");
    }
}

/// Removes `--flag value` from `args`, returning the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// Simulates `w` under the RFP config with every observability sink
/// attached and writes whichever outputs were requested.
fn observe(
    w: &Workload,
    trace_out: Option<&str>,
    metrics_out: Option<&str>,
    profile_out: Option<&str>,
) {
    use rfp_obs::{ChromeTraceSink, MetricsSink, ProfileSink, TeeProbe};
    let len = rfp_bench::trace_len_from_env(rfp_bench::DEFAULT_TRACE_LEN);
    let cfg = rfp_core::CoreConfig::tiger_lake().with_rfp();
    let tee = TeeProbe::new(
        TeeProbe::new(ChromeTraceSink::new(cfg.rob_entries), MetricsSink::new()),
        ProfileSink::new(),
    );
    let (_report, tee) =
        rfp_core::simulate_workload_probed(&cfg, w, len, tee).expect("valid config");
    let write_or_die = |path: &str, contents: &str| {
        std::fs::write(path, contents).unwrap_or_else(|e| {
            eprintln!("error: write {path}: {e}");
            std::process::exit(2);
        });
    };
    if let Some(dir) = trace_out {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("error: mkdir {dir}: {e}");
            std::process::exit(2);
        });
        let path = format!("{dir}/{}.trace.json", w.name);
        write_or_die(&path, &tee.a.a.into_json());
        eprintln!("wrote pipeline trace to {path} (load in Perfetto or chrome://tracing)");
    }
    if let Some(file) = metrics_out {
        let json = format!(
            "{{\"workload\":\"{}\",\"len\":{len},\"metrics\":{}}}\n",
            rfp_types::json_escape(w.name),
            tee.a.b.into_metrics().to_json()
        );
        write_or_die(file, &json);
        eprintln!("wrote metrics histograms to {file}");
    }
    if let Some(file) = profile_out {
        let json = format!(
            "{{\"workload\":\"{}\",\"len\":{len},\"profile\":{}}}\n",
            rfp_types::json_escape(w.name),
            tee.b.into_report().to_json()
        );
        write_or_die(file, &json);
        eprintln!("wrote per-load-PC profile to {file}");
    }
}

fn main() {
    // Accept `--threads N` for CLI symmetry with the other bins; this
    // tool only prints static suite metadata, so it's a documented no-op.
    // Validate `RFP_SIM_MODE` even though the single-workload trace path
    // is always full-fidelity: a malformed value exits 2 here exactly as
    // it would in `experiments`/`calibrate`, so a typo'd export fails the
    // whole pipeline at its first command instead of half-applying.
    let _ = rfp_bench::SimMode::from_env();
    // Same deal for `RFP_INSPECT_WINDOWS` (used by `experiments inspect`),
    // `RFP_STORE` (the persistent experiment store), and `RFP_HISTORY`
    // (the run-history ledger): this bin never touches them, but a
    // malformed export must not half-work across a pipeline that also
    // runs `experiments`.
    let _ = rfp_bench::inspect_windows_from_env();
    let _ = rfp_bench::ExpStore::from_env();
    let _ = rfp_bench::history_store_from_env();
    let _ = rfp_bench::engine_trace_from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        args.drain(i..(i + 2).min(args.len()));
    }
    // Accept `--engine-trace-out FILE` for CLI symmetry too: this bin
    // runs no grid, so there is no engine to trace — validated, then a
    // documented no-op.
    if let Some(v) = take_flag(&mut args, "--engine-trace-out") {
        let _: rfp_bench::EngineTracePath = v.parse().unwrap_or_else(|e| {
            eprintln!("error: --engine-trace-out {v:?} is not a valid value: {e}");
            std::process::exit(2);
        });
    }
    let trace_out = take_flag(&mut args, "--trace-out");
    let metrics_out = take_flag(&mut args, "--metrics-out");
    let profile_out = take_flag(&mut args, "--profile-out");
    let side_outputs = trace_out.is_some() || metrics_out.is_some() || profile_out.is_some();
    if let Some(name) = args.first() {
        match rfp_trace::by_name(name) {
            Some(w) => {
                describe(&w);
                if side_outputs {
                    observe(
                        &w,
                        trace_out.as_deref(),
                        metrics_out.as_deref(),
                        profile_out.as_deref(),
                    );
                }
            }
            None => {
                eprintln!("unknown workload '{name}'");
                std::process::exit(2);
            }
        }
        return;
    }
    if side_outputs {
        eprintln!("--trace-out/--metrics-out/--profile-out need a workload name");
        std::process::exit(2);
    }
    let mut t = TextTable::new(&[
        "workload",
        "category",
        "static uops",
        "loads",
        "stores",
        "patterns",
        "mispredict rate",
    ]);
    for w in rfp_trace::suite() {
        let prog = w.program();
        // Count memory instructions, not just patterns, so aliased loads
        // (which share a store's pattern) are visible.
        let loads = prog
            .insts
            .iter()
            .filter(|i| matches!(i.kind, StaticKind::Load { .. }))
            .count();
        t.row(&[
            w.name,
            w.category.label(),
            &prog.insts.len().to_string(),
            &loads.to_string(),
            &prog.static_stores().to_string(),
            &prog.patterns.len().to_string(),
            &format!("{:.3}", w.params.mispredict_rate),
        ]);
    }
    println!("{}", t.render());
    println!("(pass a workload name for its per-pattern breakdown)");
}
