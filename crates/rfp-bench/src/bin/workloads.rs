//! Prints the composition of the 65-workload synthetic suite: static
//! program sizes, memory-pattern mixes and working-set classes — the
//! knobs that calibrate the reproduction (see DESIGN.md §8).
//!
//! ```text
//! cargo run --release -p rfp-bench --bin workloads [name]
//! ```

use rfp_stats::TextTable;
use rfp_trace::{AddrPattern, StaticKind, WorkingSetClass, Workload};

fn pattern_label(p: &AddrPattern) -> &'static str {
    match p {
        AddrPattern::Stride { .. } => "stride",
        AddrPattern::PhasedStride { .. } => "phased",
        AddrPattern::Pattern2D { .. } => "2d",
        AddrPattern::Constant => "const",
        AddrPattern::Chase => "chase",
        AddrPattern::Gather => "gather",
    }
}

fn ws_label(ws: WorkingSetClass) -> &'static str {
    match ws {
        WorkingSetClass::L1 => "L1",
        WorkingSetClass::L2 => "L2",
        WorkingSetClass::Llc => "LLC",
        WorkingSetClass::Dram => "DRAM",
    }
}

fn describe(w: &Workload) {
    let prog = w.program();
    println!(
        "{} ({}) — {} static uops, {} loads, {} stores, {} patterns",
        w.name,
        w.category.label(),
        prog.insts.len(),
        prog.static_loads(),
        prog.static_stores(),
        prog.patterns.len()
    );
    let mut by: std::collections::BTreeMap<(&str, &str), usize> = Default::default();
    for p in &prog.patterns {
        *by.entry((ws_label(p.ws), pattern_label(&p.addr)))
            .or_default() += 1;
    }
    for ((ws, pat), n) in by {
        println!("  {n:>3} x {ws:>4} {pat}");
    }
}

fn main() {
    // Accept `--threads N` for CLI symmetry with the other bins; this
    // tool only prints static suite metadata, so it's a documented no-op.
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        args.drain(i..(i + 2).min(args.len()));
    }
    if let Some(name) = args.first() {
        match rfp_trace::by_name(name) {
            Some(w) => describe(&w),
            None => {
                eprintln!("unknown workload '{name}'");
                std::process::exit(2);
            }
        }
        return;
    }
    let mut t = TextTable::new(&[
        "workload",
        "category",
        "static uops",
        "loads",
        "stores",
        "patterns",
        "mispredict rate",
    ]);
    for w in rfp_trace::suite() {
        let prog = w.program();
        // Count memory instructions, not just patterns, so aliased loads
        // (which share a store's pattern) are visible.
        let loads = prog
            .insts
            .iter()
            .filter(|i| matches!(i.kind, StaticKind::Load { .. }))
            .count();
        t.row(&[
            w.name,
            w.category.label(),
            &prog.insts.len().to_string(),
            &loads.to_string(),
            &prog.static_stores().to_string(),
            &prog.patterns.len().to_string(),
            &format!("{:.3}", w.params.mispredict_rate),
        ]);
    }
    println!("{}", t.render());
    println!("(pass a workload name for its per-pattern breakdown)");
}
