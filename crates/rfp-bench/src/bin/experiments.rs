//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin experiments -- <id>... | all
//! ```
//!
//! Ids: fig1 fig2 tab1 tab2 fig10 fig11 fig12 fig13 fig14 s522 fig15 fig16
//! fig17 fig18 s552 s553 s554 s555, or `all`. Set `RFP_TRACE_LEN` to change
//! the measured micro-ops per workload (default 120000).

use rfp_bench::{Harness, DEFAULT_TRACE_LEN};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: experiments <id>... | all\n  ids: {}\n  env: RFP_TRACE_LEN=<uops> (default {DEFAULT_TRACE_LEN})",
            Harness::ALL_IDS.join(" ")
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let len = std::env::var("RFP_TRACE_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TRACE_LEN);
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        Harness::ALL_IDS.to_vec()
    } else {
        let mut ids = Vec::new();
        for a in &args {
            if Harness::ALL_IDS.contains(&a.as_str()) {
                ids.push(a.as_str());
            } else {
                eprintln!("unknown experiment id: {a} (try --help)");
                std::process::exit(2);
            }
        }
        ids
    };

    let mut h = Harness::new(len);
    let t0 = std::time::Instant::now();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            println!("{}", "=".repeat(78));
        }
        println!("[{id}]");
        println!("{}", h.run(id));
    }
    eprintln!(
        "ran {} experiment(s) at {} uops/workload in {:.1}s",
        ids.len(),
        len,
        t0.elapsed().as_secs_f32()
    );
}
