//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin experiments -- [--threads N] <id>... | all
//! ```
//!
//! Ids: fig1 fig2 tab1 tab2 fig10 fig11 fig12 fig13 fig14 s522 fig15 fig16
//! fig17 fig18 s552 s553 s554 s555 ext1 ext2, or `all`. Set `RFP_TRACE_LEN` to change
//! the measured micro-ops per workload (default 120000). `--threads N`
//! (or `RFP_THREADS`) sizes the work-stealing pool; the default is the
//! machine's available parallelism. Output is byte-identical at any
//! thread count.

use rfp_bench::{default_threads, Harness, DEFAULT_TRACE_LEN};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = default_threads();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        if i + 1 >= args.len() {
            eprintln!("--threads needs a value");
            std::process::exit(2);
        }
        match args[i + 1].parse::<usize>() {
            Ok(n) if n >= 1 => threads = n,
            _ => {
                eprintln!("--threads needs a positive integer, got {}", args[i + 1]);
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: experiments [--threads N] <id>... | all\n  ids: {}\n  env: RFP_TRACE_LEN=<uops> (default {DEFAULT_TRACE_LEN}), RFP_THREADS=<n>",
            Harness::ALL_IDS.join(" ")
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let len = std::env::var("RFP_TRACE_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TRACE_LEN);
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        Harness::ALL_IDS.to_vec()
    } else {
        let mut ids = Vec::new();
        for a in &args {
            if Harness::ALL_IDS.contains(&a.as_str()) {
                ids.push(a.as_str());
            } else {
                eprintln!("unknown experiment id: {a} (try --help)");
                std::process::exit(2);
            }
        }
        ids
    };

    let mut h = Harness::with_threads(len, threads);
    let t0 = std::time::Instant::now();
    // Fill the cache with every config the requested experiments need in
    // one work-stealing grid, so the whole machine stays busy instead of
    // parallelising one experiment at a time.
    h.prefetch(&ids);
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            println!("{}", "=".repeat(78));
        }
        println!("[{id}]");
        println!("{}", h.run(id));
    }
    let (uops, sim_secs) = h.simulated_totals();
    let wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "ran {} experiment(s) at {} uops/workload on {} thread(s) in {:.1}s \
         ({:.1}M retired uops, {:.2}M uops/s wall, {:.1}x core-parallelism)",
        ids.len(),
        len,
        threads,
        wall,
        uops as f64 / 1e6,
        uops as f64 / wall / 1e6,
        if wall > 0.0 { sim_secs / wall } else { 0.0 },
    );
}
