//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin experiments -- [--threads N] <id>... | all
//! ```
//!
//! Ids: fig1 fig2 tab1 tab2 fig10 fig11 fig12 fig13 fig14 s522 fig15 fig16
//! fig17 fig18 s552 s553 s554 s555 ext1 ext2, or `all`, plus the
//! observability extras `timeliness`, `cpi` and `profile` (not part of
//! `all`). Set
//! `RFP_TRACE_LEN` to change the measured micro-ops per workload (default
//! 120000). `--threads N` (or `RFP_THREADS`) sizes the work-stealing pool;
//! the default is the machine's available parallelism. `RFP_WARM_MODE`
//! (`off` | `exact` | `checkpoint`, default `exact`) controls warm-state
//! sharing across the grid; `off` and `exact` are byte-identical. Output
//! is byte-identical at any thread count. `RFP_SIM_MODE` (`full` | `sample`,
//! default `full`) switches on phase-sampled simulation: intervals are
//! clustered by basic-block vector, one representative per phase is
//! simulated, and per-phase integer weights extrapolate the rest. Sampled
//! output is also byte-identical at any thread count, but is an
//! approximation of full-fidelity output; `experiments sampling-error`
//! quantifies the gap.
//!
//! Observability outputs (all side files; stdout stays byte-identical):
//!
//! - `--trace-out <dir>`: write a Perfetto/`chrome://tracing` pipeline +
//!   prefetch-lifetime trace of one workload under the RFP config to
//!   `<dir>/<workload>.trace.json`.
//! - `--trace-workload <name>`: which workload to trace (default
//!   `spec17_mcf`).
//! - `--metrics-out <file>`: write per-workload latency histograms (JSON)
//!   for the RFP config over the whole suite.
//! - `--profile-out <file>`: write the per-load-PC attribution profile
//!   (JSON) for the RFP config over the whole suite.
//! - `--collapsed-out <file>`: write the same profile as collapsed stacks
//!   (`pc;outcome count` lines) for flamegraph tooling.
//! - `--telemetry-out <file>`: write per-job engine telemetry (JSONL):
//!   worker, queue depth at grab time, wall nanos.
//! - `--sampling-report <file>`: write per-workload IPC / coverage /
//!   cycles / CPI-bucket summaries (JSON) for the RFP config. Produce one
//!   under `RFP_SIM_MODE=full` and one under `=sample`, then feed both to
//!   `diff` or `sampling-error`.
//!
//! Regression sentinel: `experiments diff [--tolerances FILE]
//! <baseline.json> <candidate.json>` compares two `--metrics-out` (or
//! `--profile-out`, or `--sampling-report`) documents leaf by leaf under
//! the tolerances embedded in the baseline, optionally extended/overridden
//! by a standalone tolerances file, printing a violations table. Exit code
//! 0 = within tolerance, 1 = regression, 2 = bad input.
//!
//! `experiments sampling-error <full.json> <sampled.json>` condenses two
//! `--sampling-report` documents into per-metric p50/p95/max relative
//! error bounds (JSON on stdout) using the same relative-error formula as
//! `diff`, so the report predicts the gate outcome.
//!
//! Persistent store: with `RFP_STORE=<dir>` (or `--store DIR`;
//! `--no-store` disables), finished job results, warm snapshots and
//! compiled trace arenas are cached on disk content-addressed by their
//! full inputs, so an unchanged job is a file read instead of a
//! simulation. Stdout is byte-identical with the store off, cold or
//! warm. `experiments store stats | gc --max-bytes N | clear` maintains
//! the directory.
//!
//! `experiments inspect [--inspect-out FILE] [--konata-out FILE]
//! <workload>` runs the two-pass anomaly → flight-recorder flow on one
//! workload: the CPI interval series picks anomalous windows
//! (`RFP_INSPECT_WINDOWS` budget, default 4), a second fork of the same
//! warm snapshot records full per-uop lifecycles inside them, and the
//! worst window is rendered as a pipeline table. `--konata-out` writes a
//! `Kanata 0004` log loadable in the Konata O3 viewer.
//!
//! Run `experiments --help` for the generated subcommand/flag/env tables.

use std::sync::Arc;

use rfp_bench::{
    default_threads, diff_metrics_with, engine_trace_from_env, history_export_json,
    history_store_from_env, inspect_windows_from_env, inspect_workload, parse_trend_tolerances,
    render_history_list, render_history_show, render_report, render_store_stats,
    sampling_error_report_json, telemetry_jsonl, trace_len_from_env, trace_workload_json,
    trend_rows, write_engine_trace, EngineTracePath, ExpStore, Harness, HistoryLedger,
    ReportInputs, ReportPath, RunRecord, WarmPool, DEFAULT_TRACE_LEN,
};
use rfp_core::{CoreConfig, OracleMode};
use rfp_obs::EngineTracer;
use rfp_stats::{render_trend_table, TrendParams};

/// Extra experiment ids accepted by `run` but excluded from `all` (their
/// stdout carries probe-derived numbers, which `all` keeps out so its
/// bytes stay invariant under instrumentation).
const EXTRA_IDS: &[&str] = &["timeliness", "cpi", "profile"];

/// Subcommand table for the generated usage text. Adding a subcommand
/// here is the whole help-text change — the table renders aligned.
const SUBCOMMANDS: &[(&str, &str)] = &[
    (
        "<id>... | all",
        "regenerate the paper's tables/figures (ids below)",
    ),
    (
        "inspect [--inspect-out FILE] [--konata-out FILE] <workload>",
        "anomaly-window flight-recorder drill-down of one workload",
    ),
    (
        "diff [--tolerances FILE] <baseline.json> <candidate.json>",
        "regression sentinel over two metrics docs (exit 1 on violation)",
    ),
    (
        "sampling-error <full.json> <sampled.json>",
        "condense two --sampling-report docs into p50/p95/max error bounds",
    ),
    (
        "store stats | gc --max-bytes N [--include-history] | clear",
        "inspect / LRU-evict / empty the persistent experiment store",
    ),
    (
        "report --report-out FILE [--metrics F] [--profile F] ...",
        "fold the pipeline's JSON docs into one static HTML dashboard",
    ),
    (
        "history add --run-label L --sampling-report F ... | list | show | export",
        "append to / inspect the run-history ledger (history/ store tier)",
    ),
    (
        "trend [--tolerances FILE] [--window N]",
        "gate the ledger's recent runs against history (exit 1 on regression)",
    ),
];

/// Side-output flag table for the generated usage text (stdout of the
/// experiment ids stays byte-identical when any of these are set).
const SIDE_FLAGS: &[(&str, &str)] = &[
    (
        "--threads N",
        "work-stealing worker count (default: RFP_THREADS or all cores)",
    ),
    (
        "--trace-out DIR",
        "Perfetto pipeline trace of --trace-workload",
    ),
    (
        "--trace-workload W",
        "workload for --trace-out (default spec17_mcf)",
    ),
    (
        "--metrics-out FILE",
        "per-workload latency histograms (JSON)",
    ),
    (
        "--profile-out FILE",
        "per-load-PC attribution profile (JSON)",
    ),
    (
        "--collapsed-out FILE",
        "profile as collapsed stacks for flamegraph tooling",
    ),
    ("--telemetry-out FILE", "per-job engine telemetry (JSONL)"),
    (
        "--store DIR",
        "persistent experiment store root (overrides RFP_STORE)",
    ),
    (
        "--no-store",
        "disable the persistent store even when RFP_STORE is set",
    ),
    (
        "--history DIR",
        "run-history ledger root (overrides RFP_HISTORY / the store root)",
    ),
    (
        "--no-history",
        "disable ledger recording even when RFP_HISTORY/RFP_STORE is set",
    ),
    (
        "--run-label L",
        "record this sweep in the ledger under label L (needs a ledger root)",
    ),
    (
        "--timestamp T",
        "caller-supplied timestamp for --run-label (never generated; default -)",
    ),
    (
        "--sampling-report FILE",
        "per-workload IPC/coverage/CPI sampling summary (JSON)",
    ),
    (
        "--inspect-out FILE",
        "inspect only: windows + uop lifecycles (JSON)",
    ),
    (
        "--konata-out FILE",
        "inspect only: Kanata 0004 pipeline log",
    ),
    (
        "--engine-trace-out FILE",
        "engine self-trace (Chrome JSON + engineMetrics summary)",
    ),
];

/// Renders one aligned two-column table.
fn push_table(out: &mut String, rows: &[(String, String)]) {
    let w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (n, d) in rows {
        out.push_str(&format!("  {n:<w$}  {d}\n"));
    }
}

/// The full usage text, generated from [`SUBCOMMANDS`], [`SIDE_FLAGS`],
/// the harness's id list and the env-knob table — nothing hand-drifted.
fn usage() -> String {
    let own = |rows: &[(&str, &str)]| -> Vec<(String, String)> {
        rows.iter()
            .map(|&(n, d)| (n.to_string(), d.to_string()))
            .collect()
    };
    let env_rows = vec![
        (
            "RFP_TRACE_LEN".to_string(),
            format!("measured uops per workload (default {DEFAULT_TRACE_LEN})"),
        ),
        (
            "RFP_THREADS".to_string(),
            "default worker count".to_string(),
        ),
        (
            "RFP_WARM_MODE".to_string(),
            "off | exact | checkpoint (default exact)".to_string(),
        ),
        (
            "RFP_SIM_MODE".to_string(),
            "full | sample (default full)".to_string(),
        ),
        (
            "RFP_INSPECT_WINDOWS".to_string(),
            "capture-window budget for inspect (default 4)".to_string(),
        ),
        (
            "RFP_STORE".to_string(),
            "persistent experiment store directory (off when unset)".to_string(),
        ),
        (
            "RFP_HISTORY".to_string(),
            "run-history ledger directory (falls back to RFP_STORE)".to_string(),
        ),
        (
            "RFP_ENGINE_TRACE".to_string(),
            "engine self-trace output path (off when unset)".to_string(),
        ),
    ];
    let mut out = String::from("usage: experiments [flags] <subcommand>\n\nsubcommands:\n");
    push_table(&mut out, &own(SUBCOMMANDS));
    out.push_str(&format!(
        "\nids: {}\nextras (not in `all`): {}\n\nside-output flags:\n",
        Harness::ALL_IDS.join(" "),
        EXTRA_IDS.join(" ")
    ));
    push_table(&mut out, &own(SIDE_FLAGS));
    out.push_str("\nenv:\n");
    push_table(&mut out, &env_rows);
    out
}

/// Reads a file or exits with code 2 and a contextual message — I/O
/// problems are usage errors here, not bugs worth a backtrace.
fn read_or_die(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: read {path}: {e}");
        std::process::exit(2);
    })
}

/// Writes a file or exits with code 2 and a contextual message.
fn write_or_die(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("error: write {path}: {e}");
        std::process::exit(2);
    });
}

/// Removes `--flag value` from `args`, returning the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// Removes a bare `--flag` (no value) from `args`, returning whether it
/// was present.
fn take_bare(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Resolves the persistent store from flags and environment: `--no-store`
/// wins, then `--store DIR`, then `RFP_STORE`. Malformed or unwritable
/// values exit 2 with a contextual message.
fn resolve_store(store_flag: Option<&str>, no_store: bool) -> Option<Arc<ExpStore>> {
    if no_store {
        return None;
    }
    match store_flag {
        Some(dir) => Some(ExpStore::open_or_die(std::path::Path::new(dir), "--store")),
        None => ExpStore::from_env(),
    }
}

/// Resolves the run-history ledger root: `--no-history` wins, then
/// `--history DIR`, then `RFP_HISTORY`, then the persistent store
/// (`--store`/`RFP_STORE`) — the ledger is the `history/` tier of the
/// same on-disk layout, so a store root doubles as a ledger root.
fn resolve_history(
    history_flag: Option<&str>,
    no_history: bool,
    store_flag: Option<&str>,
    no_store: bool,
) -> Option<Arc<ExpStore>> {
    if no_history {
        return None;
    }
    if let Some(dir) = history_flag {
        return Some(ExpStore::open_or_die(
            std::path::Path::new(dir),
            "--history",
        ));
    }
    history_store_from_env().or_else(|| resolve_store(store_flag, no_store))
}

/// Exits 2 with the shared "no ledger" message.
fn no_ledger_configured() -> ! {
    eprintln!(
        "error: no run-history ledger configured (set RFP_HISTORY or pass --history DIR; \
         a persistent store root also works — the ledger is its history/ tier)"
    );
    std::process::exit(2);
}

fn main() {
    // Validate every env knob up front so a malformed value fails the
    // pipeline at its first command instead of mid-sweep (the values are
    // re-read where they're used). `RFP_STORE` is validated (and its
    // directories created) here too: an empty or unwritable store path
    // must fail the sweep's first command, not its last.
    let _ = inspect_windows_from_env();
    let _ = ExpStore::from_env();
    let _ = history_store_from_env();
    let _ = engine_trace_from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // The report generator is pure file folding — dispatch before any
    // simulation setup.
    if args.first().map(String::as_str) == Some("report") {
        let out = take_flag(&mut args, "--report-out").unwrap_or_else(|| {
            eprintln!(
                "usage: experiments report --report-out FILE [--metrics F] [--profile F] \
                 [--sampling-report F] [--sampling-error F] [--engine-trace F] \
                 [--telemetry F] [--bench F] [--history F]"
            );
            std::process::exit(2);
        });
        let ReportPath(out) = out.parse().unwrap_or_else(|e| {
            eprintln!("error: --report-out {out:?} is not a valid value: {e}");
            std::process::exit(2);
        });
        let inputs = ReportInputs {
            metrics: take_flag(&mut args, "--metrics").map(|p| read_or_die(&p)),
            profile: take_flag(&mut args, "--profile").map(|p| read_or_die(&p)),
            sampling_report: take_flag(&mut args, "--sampling-report").map(|p| read_or_die(&p)),
            sampling_error: take_flag(&mut args, "--sampling-error").map(|p| read_or_die(&p)),
            engine_trace: take_flag(&mut args, "--engine-trace").map(|p| read_or_die(&p)),
            telemetry: take_flag(&mut args, "--telemetry").map(|p| read_or_die(&p)),
            bench: take_flag(&mut args, "--bench").map(|p| read_or_die(&p)),
            history: take_flag(&mut args, "--history").map(|p| read_or_die(&p)),
        };
        if args.len() != 1 {
            eprintln!("error: unexpected report argument(s): {:?}", &args[1..]);
            std::process::exit(2);
        }
        match render_report(&inputs) {
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
            Ok(html) => {
                write_or_die(&out.display().to_string(), &html);
                eprintln!("wrote dashboard to {}", out.display());
                std::process::exit(0);
            }
        }
    }
    // Store maintenance is pure filesystem work — dispatch before any
    // simulation setup.
    if args.first().map(String::as_str) == Some("store") {
        let store_flag = take_flag(&mut args, "--store");
        let no_store = take_bare(&mut args, "--no-store");
        let Some(store) = resolve_store(store_flag.as_deref(), no_store) else {
            eprintln!("error: no store configured (set RFP_STORE or pass --store DIR)");
            std::process::exit(2);
        };
        match args.get(1).map(String::as_str) {
            Some("stats") if args.len() == 2 => {
                print!("{}", render_store_stats(&store));
                std::process::exit(0);
            }
            Some("gc") => {
                let include_history = take_bare(&mut args, "--include-history");
                let max = take_flag(&mut args, "--max-bytes").unwrap_or_else(|| {
                    eprintln!("usage: experiments store gc --max-bytes N [--include-history]");
                    std::process::exit(2);
                });
                let max: u64 = max.parse().unwrap_or_else(|e| {
                    eprintln!("error: --max-bytes {max:?} is not a valid value: {e}");
                    std::process::exit(2);
                });
                if args.len() != 2 {
                    eprintln!("usage: experiments store gc --max-bytes N [--include-history]");
                    std::process::exit(2);
                }
                let (entries, bytes) = store.gc(max, include_history);
                println!("evicted {entries} entries ({bytes} bytes)");
                print!("{}", render_store_stats(&store));
                std::process::exit(0);
            }
            Some("clear") if args.len() == 2 => {
                let removed = store.clear();
                println!("removed {removed} entries");
                std::process::exit(0);
            }
            _ => {
                eprintln!(
                    "usage: experiments store stats | gc --max-bytes N [--include-history] | clear"
                );
                std::process::exit(2);
            }
        }
    }
    // The ledger subcommands are pure file work over the history tier —
    // dispatch before any simulation setup.
    if args.first().map(String::as_str) == Some("history") {
        let history_flag = take_flag(&mut args, "--history");
        let no_history = take_bare(&mut args, "--no-history");
        let store_flag = take_flag(&mut args, "--store");
        let no_store = take_bare(&mut args, "--no-store");
        let Some(store) = resolve_history(
            history_flag.as_deref(),
            no_history,
            store_flag.as_deref(),
            no_store,
        ) else {
            no_ledger_configured();
        };
        let ledger = HistoryLedger::new(store);
        match args.get(1).map(String::as_str) {
            Some("add") => {
                let usage = || -> ! {
                    eprintln!(
                        "usage: experiments history add --run-label L --sampling-report F \
                         [--timestamp T] [--sampling-error F] [--engine-trace F] [--bench F]"
                    );
                    std::process::exit(2);
                };
                let Some(label) = take_flag(&mut args, "--run-label") else {
                    usage();
                };
                let timestamp = take_flag(&mut args, "--timestamp").unwrap_or_else(|| "-".into());
                let Some(report) =
                    take_flag(&mut args, "--sampling-report").map(|p| read_or_die(&p))
                else {
                    usage();
                };
                let error = take_flag(&mut args, "--sampling-error").map(|p| read_or_die(&p));
                let trace = take_flag(&mut args, "--engine-trace").map(|p| read_or_die(&p));
                let bench = take_flag(&mut args, "--bench").map(|p| read_or_die(&p));
                if args.len() != 2 {
                    usage();
                }
                let outcome = RunRecord::from_documents(
                    &label,
                    &timestamp,
                    &report,
                    error.as_deref(),
                    trace.as_deref(),
                    bench.as_deref(),
                )
                .and_then(|r| ledger.add(r));
                match outcome {
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    }
                    Ok(seq) => {
                        println!("recorded run {label:?} as ledger seq {seq}");
                        std::process::exit(0);
                    }
                }
            }
            Some("list") if args.len() == 2 => {
                print!("{}", render_history_list(&ledger.load()));
                std::process::exit(0);
            }
            Some("show") if args.len() == 2 => {
                print!("{}", render_history_show(&ledger.load()));
                std::process::exit(0);
            }
            Some("export") if args.len() == 2 => {
                print!("{}", history_export_json(&ledger.load()));
                std::process::exit(0);
            }
            _ => {
                eprintln!(
                    "usage: experiments history add --run-label L --sampling-report F ... \
                     | list | show | export"
                );
                std::process::exit(2);
            }
        }
    }
    if args.first().map(String::as_str) == Some("trend") {
        let history_flag = take_flag(&mut args, "--history");
        let no_history = take_bare(&mut args, "--no-history");
        let store_flag = take_flag(&mut args, "--store");
        let no_store = take_bare(&mut args, "--no-store");
        let tolerances = match take_flag(&mut args, "--tolerances").map(|p| read_or_die(&p)) {
            None => Vec::new(),
            Some(text) => parse_trend_tolerances(&text).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            }),
        };
        let mut params = TrendParams::default();
        if let Some(w) = take_flag(&mut args, "--window") {
            match w.parse::<usize>() {
                Ok(n) if n >= 1 => params.window = n,
                _ => {
                    eprintln!("--window needs a positive integer, got {w}");
                    std::process::exit(2);
                }
            }
        }
        if args.len() != 1 {
            eprintln!("usage: experiments trend [--tolerances FILE] [--window N]");
            std::process::exit(2);
        }
        let Some(store) = resolve_history(
            history_flag.as_deref(),
            no_history,
            store_flag.as_deref(),
            no_store,
        ) else {
            no_ledger_configured();
        };
        let view = HistoryLedger::new(store).load();
        let rows = trend_rows(&view, &tolerances, &params);
        print!("{}", render_trend_table(&rows));
        let regressed = rows.iter().any(|(_, v)| v.regressed);
        std::process::exit(if regressed { 1 } else { 0 });
    }
    // The sentinel subcommands are pure file comparison — dispatch
    // before any simulation setup.
    if args.first().map(String::as_str) == Some("diff") {
        let tolerances = take_flag(&mut args, "--tolerances").map(|p| read_or_die(&p));
        if args.len() != 3 {
            eprintln!(
                "usage: experiments diff [--tolerances FILE] <baseline.json> <candidate.json>"
            );
            std::process::exit(2);
        }
        let baseline = read_or_die(&args[1]);
        let candidate = read_or_die(&args[2]);
        match diff_metrics_with(&baseline, &candidate, tolerances.as_deref()) {
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
            Ok(out) => {
                println!("{}", out.render());
                std::process::exit(if out.clean() { 0 } else { 1 });
            }
        }
    }
    if args.first().map(String::as_str) == Some("sampling-error") {
        if args.len() != 3 {
            eprintln!("usage: experiments sampling-error <full.json> <sampled.json>");
            std::process::exit(2);
        }
        let full = read_or_die(&args[1]);
        let sampled = read_or_die(&args[2]);
        match sampling_error_report_json(&full, &sampled) {
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
            Ok(report) => {
                print!("{report}");
                std::process::exit(0);
            }
        }
    }
    if args.first().map(String::as_str) == Some("inspect") {
        let inspect_out = take_flag(&mut args, "--inspect-out");
        let konata_out = take_flag(&mut args, "--konata-out");
        if args.len() != 2 {
            eprintln!(
                "usage: experiments inspect [--inspect-out FILE] [--konata-out FILE] <workload>"
            );
            std::process::exit(2);
        }
        let windows = inspect_windows_from_env();
        let len = trace_len_from_env(DEFAULT_TRACE_LEN);
        let cfg = CoreConfig::tiger_lake().with_rfp();
        match inspect_workload(&args[1], &cfg, len, windows) {
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
            Ok(o) => {
                print!("{}", o.render());
                if let Some(file) = &inspect_out {
                    write_or_die(file, &o.to_json());
                    eprintln!("wrote inspect windows to {file}");
                }
                if let Some(file) = &konata_out {
                    write_or_die(file, &o.to_konata());
                    eprintln!("wrote Kanata 0004 log to {file} (load in the Konata viewer)");
                }
                std::process::exit(0);
            }
        }
    }
    let mut threads = default_threads();
    if let Some(v) = take_flag(&mut args, "--threads") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => threads = n,
            _ => {
                eprintln!("--threads needs a positive integer, got {v}");
                std::process::exit(2);
            }
        }
    }
    let store_flag = take_flag(&mut args, "--store");
    let no_store = take_bare(&mut args, "--no-store");
    // `--run-label L` records the sweep's sampling summary into the
    // run-history ledger after the experiments finish. The ledger is
    // resolved up front so a misconfigured history dir fails before any
    // simulation work, and the confirmation goes to stderr so stdout
    // stays byte-identical with the ledger armed or disarmed.
    let run_label = take_flag(&mut args, "--run-label");
    let run_timestamp = take_flag(&mut args, "--timestamp");
    let history_flag = take_flag(&mut args, "--history");
    let no_history = take_bare(&mut args, "--no-history");
    if run_timestamp.is_some() && run_label.is_none() {
        eprintln!("--timestamp only makes sense with --run-label");
        std::process::exit(2);
    }
    let ledger = match &run_label {
        None => None,
        Some(_) => match resolve_history(
            history_flag.as_deref(),
            no_history,
            store_flag.as_deref(),
            no_store,
        ) {
            Some(store) => Some(HistoryLedger::new(store)),
            None => no_ledger_configured(),
        },
    };
    let trace_out = take_flag(&mut args, "--trace-out");
    let trace_workload =
        take_flag(&mut args, "--trace-workload").unwrap_or_else(|| "spec17_mcf".to_string());
    let metrics_out = take_flag(&mut args, "--metrics-out");
    let profile_out = take_flag(&mut args, "--profile-out");
    let collapsed_out = take_flag(&mut args, "--collapsed-out");
    let telemetry_out = take_flag(&mut args, "--telemetry-out");
    let sampling_out = take_flag(&mut args, "--sampling-report");
    // `--engine-trace-out FILE` overrides `RFP_ENGINE_TRACE`; both are
    // validated strictly (empty value exits 2).
    let engine_trace_out = match take_flag(&mut args, "--engine-trace-out") {
        Some(v) => {
            let EngineTracePath(p) = v.parse().unwrap_or_else(|e| {
                eprintln!("error: --engine-trace-out {v:?} is not a valid value: {e}");
                std::process::exit(2);
            });
            Some(p)
        }
        None => engine_trace_from_env(),
    };
    let side_outputs = trace_out.is_some()
        || metrics_out.is_some()
        || profile_out.is_some()
        || collapsed_out.is_some()
        || telemetry_out.is_some()
        || sampling_out.is_some()
        || engine_trace_out.is_some()
        || ledger.is_some();
    if (args.is_empty() && !side_outputs) || args.iter().any(|a| a == "--help" || a == "-h") {
        eprint!("{}", usage());
        std::process::exit(if args.is_empty() && !side_outputs {
            2
        } else {
            0
        });
    }
    let len = trace_len_from_env(DEFAULT_TRACE_LEN);
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        Harness::ALL_IDS.to_vec()
    } else {
        let mut ids = Vec::new();
        for a in &args {
            if Harness::ALL_IDS.contains(&a.as_str()) || EXTRA_IDS.contains(&a.as_str()) {
                ids.push(a.as_str());
            } else {
                eprintln!("unknown experiment id: {a} (try --help)");
                std::process::exit(2);
            }
        }
        ids
    };

    // Arm the engine self-tracer only when an output was requested: a
    // disarmed pool costs one branch per span site and stdout stays
    // byte-identical either way.
    let tracer = engine_trace_out
        .as_ref()
        .map(|_| Arc::new(EngineTracer::new()));
    let pool = WarmPool::from_env(len)
        .with_store(resolve_store(store_flag.as_deref(), no_store))
        .with_tracer(tracer.clone());
    let mut h = Harness::with_pool(len, threads, pool);
    let t0 = std::time::Instant::now();
    // Observability passes re-simulate the RFP configs with probes
    // attached; pinning their warm snapshots now lets those passes fork
    // the warmup the main sweep already paid.
    let rfp_cfg = CoreConfig::tiger_lake().with_rfp();
    if metrics_out.is_some()
        || profile_out.is_some()
        || collapsed_out.is_some()
        || sampling_out.is_some()
        || ledger.is_some()
        || ids.contains(&"profile")
        || ids.contains(&"timeliness")
    {
        h.pin_config(&rfp_cfg);
    }
    if metrics_out.is_some() || ids.contains(&"timeliness") {
        let mut dedicated = rfp_cfg.clone();
        dedicated.ports.dedicated_rfp = dedicated.ports.load_ports;
        h.pin_config(&dedicated);
    }
    if ids.contains(&"cpi") {
        h.pin_config(&CoreConfig::tiger_lake());
        h.pin_config(&rfp_cfg);
        h.pin_config(&CoreConfig::tiger_lake().with_oracle(OracleMode::L1ToRf));
    }
    // Fill the cache with every config the requested experiments need in
    // one work-stealing grid, so the whole machine stays busy instead of
    // parallelising one experiment at a time.
    h.prefetch(&ids);
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            println!("{}", "=".repeat(78));
        }
        println!("[{id}]");
        println!("{}", h.run(id));
    }

    if let Some(file) = &metrics_out {
        write_or_die(file, &h.metrics_json(&rfp_cfg));
        eprintln!("wrote metrics histograms to {file}");
    }
    if let Some(file) = &profile_out {
        write_or_die(file, &h.profile_json(&rfp_cfg));
        eprintln!("wrote per-load-PC profile to {file}");
    }
    if let Some(file) = &collapsed_out {
        write_or_die(file, &h.profile_collapsed(&rfp_cfg));
        eprintln!("wrote collapsed stacks to {file} (feed to flamegraph.pl)");
    }
    if let Some(file) = &sampling_out {
        write_or_die(file, &h.sampling_json(&rfp_cfg));
        eprintln!("wrote per-workload sampling summary to {file}");
    }
    if let (Some(label), Some(ledger)) = (&run_label, &ledger) {
        let timestamp = run_timestamp.as_deref().unwrap_or("-");
        let outcome = RunRecord::from_documents(
            label,
            timestamp,
            &h.sampling_json(&rfp_cfg),
            None,
            None,
            None,
        )
        .and_then(|r| ledger.add(r));
        match outcome {
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
            Ok(seq) => eprintln!("recorded run {label:?} as ledger seq {seq}"),
        }
    }
    if let Some(dir) = &trace_out {
        let w = rfp_trace::by_name(&trace_workload).unwrap_or_else(|| {
            eprintln!("unknown --trace-workload '{trace_workload}'");
            std::process::exit(2);
        });
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("error: mkdir {dir}: {e}");
            std::process::exit(2);
        });
        let path = format!("{dir}/{}.trace.json", w.name);
        write_or_die(&path, &trace_workload_json(&rfp_cfg, &w, len));
        eprintln!("wrote pipeline trace to {path} (load in Perfetto or chrome://tracing)");
    }
    if let Some(file) = &telemetry_out {
        // Per-job rows plus one warm-pool summary line (and one store
        // summary when a store is configured), so CI can assert the
        // snapshot cache and the persistent store actually got hit.
        let mut out = telemetry_jsonl(h.job_telemetry());
        out.push_str(&h.warm_pool().stats().jsonl_line());
        if let Some(store) = h.warm_pool().store() {
            out.push_str(&store.stats().jsonl_line());
        }
        write_or_die(file, &out);
        eprintln!("wrote {} telemetry rows to {file}", h.job_telemetry().len());
    }
    if let (Some(path), Some(tracer)) = (&engine_trace_out, &tracer) {
        let pool_stats = h.warm_pool().stats();
        let store_stats = h.warm_pool().store().map(|s| s.stats());
        write_engine_trace(
            path,
            tracer,
            h.job_telemetry(),
            &pool_stats,
            store_stats.as_ref(),
        );
        eprintln!(
            "wrote engine trace ({} spans) to {} (load in Perfetto or chrome://tracing)",
            tracer.spans().len(),
            path.display()
        );
    }

    let (uops, sim_secs) = h.simulated_totals();
    let wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "ran {} experiment(s) at {} uops/workload on {} thread(s) in {:.1}s \
         ({:.1}M retired uops, {:.2}M uops/s wall, {:.1}x core-parallelism)",
        ids.len(),
        len,
        threads,
        wall,
        uops as f64 / 1e6,
        uops as f64 / wall / 1e6,
        if wall > 0.0 { sim_secs / wall } else { 0.0 },
    );
}
