//! `experiments report`: folds the pipeline's JSON documents —
//! metrics, profile, sampling report/error, engine trace, telemetry,
//! bench trajectory — into one self-contained static HTML dashboard.
//!
//! The page is hand-rolled HTML with inline SVG charts: no scripts, no
//! external assets, opens offline. Output is byte-deterministic given
//! the same input documents — every map iterated is ordered, every
//! float uses a fixed format, and nothing stamps a timestamp — so CI
//! can diff two renders of the same sweep and the determinism tests can
//! compare bytes across runs.

use std::path::PathBuf;

use rfp_stats::{detect_trend, TrendParams};

use crate::diff::{parse_json, Json};
use crate::history::TREND_METRICS;

/// Validated `--report-out` value: a non-empty output path (missing or
/// empty is a usage error — exit 2 — like every other engine knob).
#[derive(Debug, Clone)]
pub struct ReportPath(pub PathBuf);

impl std::str::FromStr for ReportPath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.trim().is_empty() {
            return Err("expected an output file path, got an empty string".into());
        }
        Ok(ReportPath(PathBuf::from(s.trim())))
    }
}

/// Raw input documents for the dashboard, each optional: a section
/// whose document is absent renders a placeholder instead of data, so
/// the report degrades gracefully to whatever the sweep produced.
#[derive(Debug, Clone, Default)]
pub struct ReportInputs {
    /// `experiments obs --metrics-out` document.
    pub metrics: Option<String>,
    /// `experiments profile --profile-out` document.
    pub profile: Option<String>,
    /// `experiments sampling-report` document (per-workload IPC/coverage).
    pub sampling_report: Option<String>,
    /// `experiments sampling-error` document (full-vs-sampled error).
    pub sampling_error: Option<String>,
    /// Engine Chrome-trace document (`--engine-trace-out`).
    pub engine_trace: Option<String>,
    /// `--telemetry-out` JSONL stream.
    pub telemetry: Option<String>,
    /// `BENCH_engine.json` trajectory.
    pub bench: Option<String>,
    /// `experiments history export` document (the run-history ledger's
    /// deterministic stratum) — feeds the trend panels.
    pub history: Option<String>,
}

/// RFP drop reasons in `rfp_drops_over_time` column order.
const DROP_REASON_LABELS: [&str; 5] = [
    "load-first",
    "tlb-miss",
    "queue-full",
    "l1-miss",
    "squashed",
];

/// Fixed chart palette, cycled by series index.
const PALETTE: [&str; 8] = [
    "#4878cf", "#ee854a", "#6acc65", "#d65f5f", "#956cb4", "#8c613c", "#dc7ec0", "#797979",
];

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a JSON number the way the documents wrote it: integers bare,
/// fractions with six decimals (every producer in this workspace uses
/// `{:.6}` or integer formatting, so this round-trips deterministically).
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

fn get<'a>(v: &'a Json, key: &str) -> Option<&'a Json> {
    match v {
        Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn num(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

fn str_of(v: &Json) -> Option<&str> {
    match v {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn arr(v: &Json) -> Option<&[Json]> {
    match v {
        Json::Arr(items) => Some(items),
        _ => None,
    }
}

fn obj(v: &Json) -> Option<&[(String, Json)]> {
    match v {
        Json::Obj(members) => Some(members),
        _ => None,
    }
}

/// Horizontal bar chart: one row per `(label, value)`, widths scaled to
/// the max value. Deterministic: fixed geometry, `{:.2}` coordinates.
fn bar_chart(rows: &[(String, f64)], unit: &str) -> String {
    if rows.is_empty() {
        return "<p class=\"placeholder\">no data</p>".to_string();
    }
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let row_h = 22.0;
    let label_w = 180.0;
    let bar_w = 420.0;
    let height = row_h * rows.len() as f64;
    let mut svg = format!(
        "<svg class=\"chart\" viewBox=\"0 0 {:.2} {:.2}\" width=\"{:.0}\" height=\"{:.0}\" \
         role=\"img\">",
        label_w + bar_w + 90.0,
        height,
        label_w + bar_w + 90.0,
        height
    );
    for (i, (label, v)) in rows.iter().enumerate() {
        let y = row_h * i as f64;
        let w = bar_w * v / max;
        let color = PALETTE[i % PALETTE.len()];
        svg.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.2}\" text-anchor=\"end\" class=\"lbl\">{}</text>\
             <rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" fill=\"{}\"/>\
             <text x=\"{:.2}\" y=\"{:.2}\" class=\"val\">{}{}</text>",
            label_w - 6.0,
            y + row_h - 7.0,
            esc(label),
            label_w,
            y + 3.0,
            w,
            row_h - 8.0,
            color,
            label_w + w + 6.0,
            y + row_h - 7.0,
            esc(&fmt_num(*v)),
            esc(unit),
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// Stacked area chart over interval series: `series[bucket] = (label,
/// per-interval values)`. Each interval column is normalized to its own
/// total, so the chart reads as share-of-CPI over time.
fn stacked_area(series: &[(String, Vec<f64>)]) -> String {
    let n = series.first().map_or(0, |(_, v)| v.len());
    if n == 0 {
        return "<p class=\"placeholder\">no data</p>".to_string();
    }
    let (w, h) = (560.0, 180.0);
    let dx = w / (n.max(2) - 1) as f64;
    let totals: Vec<f64> = (0..n)
        .map(|i| series.iter().map(|(_, v)| v[i]).sum::<f64>().max(1e-12))
        .collect();
    let mut svg = format!(
        "<svg class=\"chart\" viewBox=\"0 0 {w:.0} {h:.0}\" width=\"{w:.0}\" height=\"{h:.0}\" \
         role=\"img\">"
    );
    let mut base = vec![0.0f64; n];
    for (si, (label, values)) in series.iter().enumerate() {
        let top: Vec<f64> = (0..n).map(|i| base[i] + values[i] / totals[i]).collect();
        let mut points = String::new();
        for (i, t) in top.iter().enumerate() {
            points.push_str(&format!("{:.2},{:.2} ", dx * i as f64, h * (1.0 - t)));
        }
        for i in (0..n).rev() {
            points.push_str(&format!("{:.2},{:.2} ", dx * i as f64, h * (1.0 - base[i])));
        }
        svg.push_str(&format!(
            "<polygon points=\"{}\" fill=\"{}\" fill-opacity=\"0.85\"><title>{}</title></polygon>",
            points.trim_end(),
            PALETTE[si % PALETTE.len()],
            esc(label),
        ));
        base = top;
    }
    svg.push_str("</svg>");
    // Legend, in series order.
    svg.push_str("<p class=\"legend\">");
    for (si, (label, _)) in series.iter().enumerate() {
        svg.push_str(&format!(
            "<span><span class=\"swatch\" style=\"background:{}\"></span>{}</span> ",
            PALETTE[si % PALETTE.len()],
            esc(label),
        ));
    }
    svg.push_str("</p>");
    svg
}

fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("<table><thead><tr>");
    for h in headers {
        out.push_str(&format!("<th>{}</th>", esc(h)));
    }
    out.push_str("</tr></thead><tbody>");
    for row in rows {
        out.push_str("<tr>");
        for cell in row {
            out.push_str(&format!("<td>{}</td>", esc(cell)));
        }
        out.push_str("</tr>");
    }
    out.push_str("</tbody></table>");
    out
}

fn section(anchor: &str, title: &str, body: &str) -> String {
    format!(
        "<section id=\"{anchor}\"><h2>{}</h2>{body}</section>",
        esc(title)
    )
}

fn placeholder(what: &str) -> String {
    format!(
        "<p class=\"placeholder\">no {} document provided</p>",
        esc(what)
    )
}

fn parse_doc(name: &str, text: &str) -> Result<Json, String> {
    parse_json(text).map_err(|e| format!("{name}: {e}"))
}

/// Workloads section: coverage and IPC bars from the sampling-report
/// document (the per-workload summary that carries IPC directly).
fn workloads_section(doc: Option<&Json>) -> String {
    let Some(doc) = doc else {
        return placeholder("sampling-report");
    };
    let rows = get(doc, "workloads").and_then(arr).unwrap_or(&[]);
    let mut ipc = Vec::new();
    let mut cov = Vec::new();
    let mut tab = Vec::new();
    for w in rows {
        let name = get(w, "workload")
            .and_then(str_of)
            .unwrap_or("?")
            .to_string();
        let wi = get(w, "ipc").and_then(num).unwrap_or(0.0);
        let wc = get(w, "coverage").and_then(num).unwrap_or(0.0);
        let cyc = get(w, "cycles").and_then(num).unwrap_or(0.0);
        ipc.push((name.clone(), wi));
        cov.push((name.clone(), wc));
        tab.push(vec![name, fmt_num(wi), fmt_num(wc), fmt_num(cyc)]);
    }
    format!(
        "<h3>IPC</h3>{}<h3>RFP coverage</h3>{}{}",
        bar_chart(&ipc, ""),
        bar_chart(&cov, ""),
        table(&["workload", "ipc", "coverage", "cycles"], &tab),
    )
}

/// CPI section: whole-run stack shares plus the interval stacked-area
/// chart, from the metrics document's `aggregate_cpi`.
fn cpi_section(doc: Option<&Json>) -> String {
    let Some(cpi) = doc.and_then(|d| get(d, "aggregate_cpi")) else {
        return placeholder("metrics");
    };
    let stack = get(cpi, "stack").and_then(obj).unwrap_or(&[]);
    let total: f64 = stack.iter().filter_map(|(_, v)| num(v)).sum();
    let shares: Vec<(String, f64)> = stack
        .iter()
        .filter_map(|(k, v)| num(v).map(|n| (k.clone(), n / total.max(1e-12))))
        .collect();
    let intervals = get(cpi, "intervals").and_then(arr).unwrap_or(&[]);
    let series: Vec<(String, Vec<f64>)> = stack
        .iter()
        .map(|(k, _)| {
            let vals = intervals
                .iter()
                .map(|iv| get(iv, k).and_then(num).unwrap_or(0.0))
                .collect();
            (k.clone(), vals)
        })
        .collect();
    format!(
        "<h3>Whole-run stack share</h3>{}<h3>Stack over measured time</h3>{}",
        bar_chart(&shares, ""),
        stacked_area(&series),
    )
}

/// Funnel section: RFP drops by reason (summed over time windows) from
/// the metrics document's aggregate observability block.
fn funnel_section(doc: Option<&Json>) -> String {
    let Some(aggregate) = doc.and_then(|d| get(d, "aggregate")) else {
        return placeholder("metrics");
    };
    let windows = get(aggregate, "rfp_drops_over_time")
        .and_then(arr)
        .unwrap_or(&[]);
    let mut by_reason = [0.0f64; DROP_REASON_LABELS.len()];
    for w in windows {
        if let Some(cells) = arr(w) {
            for (slot, cell) in by_reason.iter_mut().zip(cells) {
                *slot += num(cell).unwrap_or(0.0);
            }
        }
    }
    let rows: Vec<(String, f64)> = DROP_REASON_LABELS
        .iter()
        .zip(by_reason)
        .map(|(l, v)| (l.to_string(), v))
        .collect();
    bar_chart(&rows, "")
}

/// Profile section: top offender sites by attributed stall slots.
fn profile_section(doc: Option<&Json>) -> String {
    let Some(profile) = doc.and_then(|d| get(d, "profile")) else {
        return placeholder("profile");
    };
    let sites = get(profile, "sites").and_then(obj).unwrap_or(&[]);
    let mut rows: Vec<(String, f64, Vec<String>)> = sites
        .iter()
        .map(|(site, s)| {
            let g = |k: &str| get(s, k).and_then(num).unwrap_or(0.0);
            let stalls = g("stall_slots");
            let cells = vec![
                site.clone(),
                fmt_num(g("loads")),
                fmt_num(g("misses")),
                fmt_num(g("injected")),
                fmt_num(g("useful_fully_hidden")),
                fmt_num(g("useful_late")),
                fmt_num(g("wrong_addr")),
                fmt_num(stalls),
            ];
            (site.clone(), stalls, cells)
        })
        .collect();
    // Stable top-offender order: stall slots desc, site key asc.
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
    rows.truncate(10);
    let site_count = get(profile, "site_count").and_then(num).unwrap_or(0.0);
    let tab: Vec<Vec<String>> = rows.into_iter().map(|(_, _, c)| c).collect();
    format!(
        "<p>{} sites profiled; top {} by attributed stall slots.</p>{}",
        fmt_num(site_count),
        tab.len(),
        table(
            &[
                "site",
                "loads",
                "misses",
                "injected",
                "hidden",
                "late",
                "wrong-addr",
                "stall slots"
            ],
            &tab,
        ),
    )
}

/// Sampling section: per-metric relative-error quantiles from the
/// sampling-error document.
fn sampling_section(doc: Option<&Json>) -> String {
    let Some(doc) = doc else {
        return placeholder("sampling-error");
    };
    let metrics = get(doc, "metrics").and_then(obj).unwrap_or(&[]);
    let tab: Vec<Vec<String>> = metrics
        .iter()
        .map(|(m, q)| {
            let g = |k: &str| get(q, k).and_then(num).map_or("?".into(), fmt_num);
            vec![m.clone(), g("p50"), g("p95"), g("max")]
        })
        .collect();
    let worst_metric = get(doc, "worst_metric").and_then(str_of).unwrap_or("?");
    let worst = get(doc, "worst_rel_error").and_then(num).unwrap_or(0.0);
    format!(
        "<p>worst relative error: {} ({})</p>{}",
        fmt_num(worst),
        esc(worst_metric),
        table(&["metric", "p50", "p95", "max"], &tab),
    )
}

/// Engine section: the `engineMetrics` summary embedded in the engine
/// Chrome trace's `otherData`, plus the telemetry stream's job count.
fn engine_section(trace: Option<&Json>, telemetry: Option<&str>) -> String {
    let mut out = String::new();
    if let Some(m) = trace
        .and_then(|t| get(t, "otherData"))
        .and_then(|o| get(o, "engineMetrics"))
    {
        let jobs = get(m, "jobs").and_then(num).unwrap_or(0.0);
        out.push_str(&format!("<p>{} grid jobs.</p>", fmt_num(jobs)));
        let arms: Vec<(String, f64)> = get(m, "jobs_by_warm")
            .and_then(obj)
            .unwrap_or(&[])
            .iter()
            .filter_map(|(k, v)| num(v).map(|n| (k.clone(), n)))
            .collect();
        out.push_str("<h3>Jobs by warm arm</h3>");
        out.push_str(&bar_chart(&arms, ""));
        if let Some(pool) = get(m, "warm_pool") {
            let g = |k: &str| get(pool, k).and_then(num).map_or("?".into(), fmt_num);
            out.push_str("<h3>Warm pool</h3>");
            out.push_str(&table(
                &[
                    "snapshot hits",
                    "snapshot misses",
                    "hit rate",
                    "transplants",
                    "trace builds",
                ],
                &[vec![
                    g("snapshot_hits"),
                    g("snapshot_misses"),
                    g("snapshot_hit_rate"),
                    g("transplants"),
                    g("trace_builds"),
                ]],
            ));
        }
        if let Some(store) = get(m, "store").and_then(obj) {
            let tab: Vec<Vec<String>> = store
                .iter()
                .filter_map(|(tier, t)| {
                    obj(t)?;
                    let g = |k: &str| get(t, k).and_then(num).map_or("?".into(), fmt_num);
                    Some(vec![
                        tier.clone(),
                        g("hits"),
                        g("misses"),
                        g("hit_rate"),
                        g("bytes_read"),
                        g("bytes_written"),
                    ])
                })
                .collect();
            out.push_str("<h3>Persistent store</h3>");
            out.push_str(&table(
                &[
                    "tier",
                    "hits",
                    "misses",
                    "hit rate",
                    "bytes read",
                    "bytes written",
                ],
                &tab,
            ));
        }
        if let Some(timing) = get(m, "timing") {
            let g = |k: &str| get(timing, k).and_then(num).map_or("?".into(), fmt_num);
            out.push_str("<h3>Host timing (non-deterministic)</h3>");
            out.push_str(&table(
                &["workers", "steals", "wall nanos"],
                &[vec![g("workers"), g("steals"), g("wall_nanos")]],
            ));
        }
    } else {
        out.push_str(&placeholder("engine-trace"));
    }
    if let Some(text) = telemetry {
        let mut jobs = 0usize;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            if let Ok(v) = parse_json(line) {
                if get(&v, "job").is_some() {
                    jobs += 1;
                }
            }
        }
        out.push_str(&format!("<p>{jobs} telemetry rows.</p>"));
    }
    out
}

/// Bench section: flattened `BENCH_engine.json` leaves as one table.
fn bench_section(doc: Option<&Json>) -> String {
    let Some(doc) = doc else {
        return placeholder("bench");
    };
    let flat = crate::diff::flatten(doc);
    let tab: Vec<Vec<String>> = flat
        .iter()
        .map(|(k, v)| {
            let rendered = match v {
                Json::Num(n) => fmt_num(*n),
                Json::Str(s) => s.clone(),
                Json::Bool(b) => b.to_string(),
                Json::Null => "null".to_string(),
                _ => "…".to_string(),
            };
            vec![k.clone(), rendered]
        })
        .collect();
    table(&["key", "value"], &tab)
}

/// Inline sparkline over one metric series, min-max normalized. Fixed
/// geometry and `{:.2}` coordinates keep the bytes deterministic.
fn sparkline(values: &[f64]) -> String {
    if values.len() < 2 {
        return "<span class=\"placeholder\">(1 run)</span>".to_string();
    }
    let (w, h) = (120.0, 22.0);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let dx = w / (values.len() - 1) as f64;
    let mut points = String::new();
    for (i, v) in values.iter().enumerate() {
        points.push_str(&format!(
            "{:.2},{:.2} ",
            dx * i as f64,
            2.0 + (h - 4.0) * (1.0 - (v - min) / span)
        ));
    }
    format!(
        "<svg class=\"spark\" viewBox=\"0 0 {w:.0} {h:.0}\" width=\"{w:.0}\" height=\"{h:.0}\" \
         role=\"img\"><polyline points=\"{}\" fill=\"none\" stroke=\"{}\" \
         stroke-width=\"1.5\"/></svg>",
        points.trim_end(),
        PALETTE[0],
    )
}

/// Trend section: per-`(workload, metric)` sparklines over the ledger
/// plus a regression-callout table, both through
/// [`detect_trend`] with default parameters (the CLI gate
/// `experiments trend` applies the committed tolerance file; the panel
/// is the visual companion). Empty ledger → labelled placeholder.
fn trend_section(doc: Option<&Json>) -> String {
    let Some(doc) = doc else {
        return placeholder("history");
    };
    let runs = get(doc, "runs").and_then(arr).unwrap_or(&[]);
    if runs.is_empty() {
        return "<p class=\"placeholder\">history ledger is empty — record sweeps with \
                `experiments history add` to populate the trend panels</p>"
            .to_string();
    }
    let labels: Vec<&str> = runs
        .iter()
        .map(|r| get(r, "label").and_then(str_of).unwrap_or("?"))
        .collect();
    let mut names: Vec<&str> = runs
        .iter()
        .flat_map(|r| get(r, "workloads").and_then(arr).unwrap_or(&[]).iter())
        .filter_map(|w| get(w, "workload").and_then(str_of))
        .collect();
    names.sort_unstable();
    names.dedup();
    let series_for = |name: &str, metric: &str| -> Vec<f64> {
        runs.iter()
            .filter_map(|r| {
                get(r, "workloads")
                    .and_then(arr)
                    .unwrap_or(&[])
                    .iter()
                    .find(|w| get(w, "workload").and_then(str_of) == Some(name))
            })
            .filter_map(|w| get(w, metric).and_then(num))
            .collect()
    };
    let params = TrendParams::default();
    let mut callouts: Vec<Vec<String>> = Vec::new();
    let mut spark_html = String::from(
        "<table><thead><tr><th>metric</th><th>trend</th><th>latest</th>\
         <th>rel Δ</th><th>verdict</th></tr></thead><tbody>",
    );
    for name in &names {
        for (metric, dir) in TREND_METRICS {
            let series = series_for(name, metric);
            if series.is_empty() {
                continue;
            }
            let v = detect_trend(&series, dir, &params);
            let path = format!("{name}.{metric}");
            if v.regressed {
                callouts.push(vec![
                    path.clone(),
                    v.n.to_string(),
                    fmt_num(v.reference_mean),
                    fmt_num(v.recent_mean),
                    format!("{:+.4}", v.rel_delta),
                    v.reason.clone(),
                ]);
            }
            spark_html.push_str(&format!(
                "<tr{}><td>{}</td><td>{}</td><td>{}</td><td>{:+.4}</td><td>{}</td></tr>",
                if v.regressed {
                    " class=\"regressed\""
                } else {
                    ""
                },
                esc(&path),
                sparkline(&series),
                esc(&fmt_num(*series.last().expect("non-empty"))),
                v.rel_delta,
                if v.regressed { "REGRESSED" } else { "ok" },
            ));
        }
    }
    spark_html.push_str("</tbody></table>");
    let callout_html = if callouts.is_empty() {
        format!(
            "<p>no regressions across {} run(s) at the default tolerance \
             ({:.0}%).</p>",
            runs.len(),
            params.rel_tolerance * 100.0
        )
    } else {
        format!(
            "<h3>Regressions</h3>{}",
            table(
                &["metric", "n", "reference", "recent", "rel Δ", "reason"],
                &callouts,
            )
        )
    };
    format!(
        "<p>{} run(s) in the ledger: {}.</p>{}<h3>Per-metric series</h3>{}",
        runs.len(),
        esc(&labels.join(" → ")),
        callout_html,
        spark_html,
    )
}

const STYLE: &str = "body{font:14px/1.45 system-ui,sans-serif;margin:0;color:#222}\
 header{background:#1b2a4a;color:#fff;padding:14px 24px}\
 header h1{margin:0;font-size:20px}\
 nav{padding:6px 24px;background:#eef1f7;position:sticky;top:0}\
 nav a{margin-right:14px;color:#1b2a4a;text-decoration:none}\
 main{max-width:960px;margin:0 auto;padding:8px 24px 48px}\
 section{margin-top:28px;border-top:1px solid #ddd;padding-top:8px}\
 h2{font-size:17px}h3{font-size:14px;margin-bottom:4px}\
 table{border-collapse:collapse;margin:8px 0}\
 th,td{border:1px solid #ccc;padding:3px 9px;text-align:right}\
 th:first-child,td:first-child{text-align:left}\
 .placeholder{color:#888;font-style:italic}\
 .chart{display:block;margin:6px 0}\
 .spark{vertical-align:middle}\
 tr.regressed td{background:#fbe9e9}\
 .chart .lbl{font-size:11px}.chart .val{font-size:11px;fill:#555}\
 .legend span{margin-right:12px;font-size:12px}\
 .swatch{display:inline-block;width:10px;height:10px;margin-right:4px}";

/// Sections in page order: `(anchor, title)`.
const SECTIONS: [(&str, &str); 9] = [
    ("overview", "Overview"),
    ("workloads", "Workloads"),
    ("cpi", "CPI stacks"),
    ("funnel", "RFP drop funnel"),
    ("profile", "Top offender sites"),
    ("sampling", "Sampling accuracy"),
    ("engine", "Engine observability"),
    ("bench", "Bench trajectory"),
    ("trend", "Run history & trends"),
];

/// Renders the full dashboard. Fails only on a present-but-unparseable
/// input document (a truncated file is a pipeline bug worth surfacing,
/// not a placeholder).
///
/// # Errors
///
/// The name of the offending document and the parse error.
pub fn render_report(inputs: &ReportInputs) -> Result<String, String> {
    let parse_opt = |name: &str, text: &Option<String>| -> Result<Option<Json>, String> {
        text.as_deref().map(|t| parse_doc(name, t)).transpose()
    };
    let metrics = parse_opt("metrics", &inputs.metrics)?;
    let profile = parse_opt("profile", &inputs.profile)?;
    let sampling_report = parse_opt("sampling-report", &inputs.sampling_report)?;
    let sampling_error = parse_opt("sampling-error", &inputs.sampling_error)?;
    let engine_trace = parse_opt("engine-trace", &inputs.engine_trace)?;
    let bench = parse_opt("bench", &inputs.bench)?;
    let history = parse_opt("history", &inputs.history)?;

    let inventory: Vec<Vec<String>> = [
        ("metrics", inputs.metrics.is_some()),
        ("profile", inputs.profile.is_some()),
        ("sampling-report", inputs.sampling_report.is_some()),
        ("sampling-error", inputs.sampling_error.is_some()),
        ("engine-trace", inputs.engine_trace.is_some()),
        ("telemetry", inputs.telemetry.is_some()),
        ("bench", inputs.bench.is_some()),
        ("history", inputs.history.is_some()),
    ]
    .iter()
    .map(|(n, present)| {
        vec![
            n.to_string(),
            if *present { "provided" } else { "—" }.to_string(),
        ]
    })
    .collect();
    let overview = format!(
        "<p>Register-file-prefetch experiment dashboard — static render, \
         no scripts, byte-deterministic for a given set of input \
         documents.</p>{}",
        table(&["document", "status"], &inventory),
    );

    let bodies = [
        overview,
        workloads_section(sampling_report.as_ref()),
        cpi_section(metrics.as_ref()),
        funnel_section(metrics.as_ref()),
        profile_section(profile.as_ref()),
        sampling_section(sampling_error.as_ref()),
        engine_section(engine_trace.as_ref(), inputs.telemetry.as_deref()),
        bench_section(bench.as_ref()),
        trend_section(history.as_ref()),
    ];

    let mut nav = String::from("<nav>");
    for (anchor, title) in SECTIONS {
        nav.push_str(&format!("<a href=\"#{anchor}\">{}</a>", esc(title)));
    }
    nav.push_str("</nav>");

    let mut html = String::from(
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>rfp experiments report</title>",
    );
    html.push_str(&format!("<style>{STYLE}</style></head><body>"));
    html.push_str("<header><h1>rfp experiments report</h1></header>");
    html.push_str(&nav);
    html.push_str("<main>");
    for ((anchor, title), body) in SECTIONS.iter().zip(&bodies) {
        html.push_str(&section(anchor, title, body));
    }
    html.push_str("</main></body></html>\n");
    Ok(html)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_inputs() -> ReportInputs {
        ReportInputs {
            metrics: Some(
                r#"{"config_key":"00ff","len":100,
                    "aggregate":{"rfp_drops_over_time":[[1,2,3,4,5],[5,4,3,2,1]]},
                    "aggregate_cpi":{"interval_uops":8192,
                        "stack":{"base":10,"mem-dram":5},
                        "intervals":[{"base":6,"mem-dram":2},{"base":4,"mem-dram":3}]}}"#
                    .to_string(),
            ),
            profile: Some(
                r#"{"profile":{"site_count":2,"sites":{
                    "0x10":{"loads":5,"misses":2,"injected":2,"useful_fully_hidden":1,
                            "useful_late":0,"wrong_addr":0,"stall_slots":40},
                    "0x20":{"loads":9,"misses":1,"injected":1,"useful_fully_hidden":0,
                            "useful_late":1,"wrong_addr":0,"stall_slots":90}}}}"#
                    .to_string(),
            ),
            sampling_report: Some(
                r#"{"workloads":[{"workload":"a","ipc":1.5,"coverage":0.25,"cycles":100},
                               {"workload":"b","ipc":2.0,"coverage":0.5,"cycles":50}]}"#
                    .to_string(),
            ),
            sampling_error: Some(
                r#"{"workloads":2,"worst_metric":"ipc","worst_rel_error":0.01,
                    "metrics":{"ipc":{"p50":0.001,"p95":0.005,"max":0.01}}}"#
                    .to_string(),
            ),
            engine_trace: Some(
                r#"{"traceEvents":[],"displayTimeUnit":"ms","otherData":{
                    "engineMetrics":{"schema":1,"jobs":4,"jobs_by_warm":{"fork":3,"straight":1},
                    "warm_pool":{"snapshot_hits":3,"snapshot_misses":1,
                                 "snapshot_hit_rate":0.75,"transplants":0,"trace_builds":1},
                    "store":{"result":{"hits":1,"misses":3,"hit_rate":0.25,
                                       "bytes_read":10,"bytes_written":30},"corrupt":0},
                    "timing":{"workers":2,"steals":1,"wall_nanos":99}}}}"#
                    .to_string(),
            ),
            telemetry: Some(
                "{\"schema\":1,\"job\":0}\n{\"schema\":1,\"job\":1}\n{\"warm_pool\":{}}\n"
                    .to_string(),
            ),
            bench: Some(r#"{"simulator":{"mips":12.5},"schema":"v1"}"#.to_string()),
            history: Some(
                r#"{"schema":1,"corrupt_skipped":0,"runs":[
                    {"seq":1,"label":"pr9","timestamp":"t1","trace_len":100,"workloads":[
                        {"workload":"a","ipc":2.0,"coverage":0.5,"cycles":100,"cpi":{}}],
                     "sampling_error":null},
                    {"seq":2,"label":"pr10","timestamp":"t2","trace_len":100,"workloads":[
                        {"workload":"a","ipc":1.0,"coverage":0.5,"cycles":200,"cpi":{}}],
                     "sampling_error":null}]}"#
                    .to_string(),
            ),
        }
    }

    #[test]
    fn report_is_byte_deterministic() {
        let a = render_report(&sample_inputs()).unwrap();
        let b = render_report(&sample_inputs()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn report_has_every_section_anchor_and_balanced_sections() {
        let html = render_report(&sample_inputs()).unwrap();
        for (anchor, _) in SECTIONS {
            assert!(
                html.contains(&format!("<section id=\"{anchor}\">")),
                "missing section {anchor}"
            );
        }
        assert_eq!(
            html.matches("<section").count(),
            html.matches("</section>").count()
        );
        assert_eq!(
            html.matches("<table").count(),
            html.matches("</table>").count()
        );
        // Data actually landed: top offender site, warm arm, telemetry rows.
        assert!(html.contains("0x20"));
        assert!(html.contains("fork"));
        assert!(html.contains("2 telemetry rows."));
    }

    #[test]
    fn trend_panel_flags_the_injected_regression() {
        let html = render_report(&sample_inputs()).unwrap();
        // The sample ledger halves workload a's IPC and doubles its
        // cycles between pr9 and pr10: both must land in the callouts.
        assert!(html.contains("pr9 → pr10"), "run labels rendered");
        assert!(html.contains("a.ipc"));
        assert!(html.contains("a.cycles"));
        assert!(html.contains("REGRESSED"));
        assert!(html.contains("class=\"spark\""), "sparklines rendered");
        // Coverage is flat: not every metric regresses.
        assert!(html.contains(">ok<"));
    }

    #[test]
    fn empty_history_renders_a_labelled_placeholder() {
        let inputs = ReportInputs {
            history: Some(r#"{"schema":1,"corrupt_skipped":0,"runs":[]}"#.to_string()),
            ..Default::default()
        };
        let html = render_report(&inputs).unwrap();
        assert!(html.contains("history ledger is empty"), "{html}");
        assert!(!html.contains("REGRESSED"));
        // Absent entirely: the generic placeholder instead.
        let html = render_report(&ReportInputs::default()).unwrap();
        assert!(html.contains("no history document provided"));
    }

    #[test]
    fn missing_documents_render_placeholders() {
        let html = render_report(&ReportInputs::default()).unwrap();
        assert!(html.contains("no metrics document provided"));
        assert!(html.contains("no engine-trace document provided"));
        assert!(html.contains("no bench document provided"));
        assert_eq!(
            html.matches("<section").count(),
            html.matches("</section>").count()
        );
    }

    #[test]
    fn unparseable_document_is_an_error_not_a_placeholder() {
        let inputs = ReportInputs {
            metrics: Some("{truncated".to_string()),
            ..Default::default()
        };
        let err = render_report(&inputs).unwrap_err();
        assert!(err.starts_with("metrics:"), "{err}");
    }

    #[test]
    fn report_path_rejects_empty() {
        assert!(" ".parse::<ReportPath>().is_err());
        assert!("report.html".parse::<ReportPath>().is_ok());
    }

    #[test]
    fn escapes_untrusted_strings() {
        let inputs = ReportInputs {
            sampling_report: Some(
                r#"{"workloads":[{"workload":"<b>&x","ipc":1,"coverage":0,"cycles":1}]}"#
                    .to_string(),
            ),
            ..Default::default()
        };
        let html = render_report(&inputs).unwrap();
        assert!(html.contains("&lt;b&gt;&amp;x"));
        assert!(!html.contains("<b>&x"));
    }
}
