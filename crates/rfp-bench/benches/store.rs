//! Economics of the persistent experiment store: what one entry costs to
//! publish and to serve, and what the store buys end-to-end across the
//! full `experiments all` config inventory — a cold (publishing) sweep,
//! a warm (all-hits) re-run, and a cold-results sweep that still forks
//! from persisted warm snapshots. Merged into `BENCH_engine.json` under
//! the `store` section. Byte-identity of every arm against the store-off
//! reference is asserted before anything is written.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rfp_bench::{
    config_key, default_threads, result_key, run_grid_pooled, update_bench_json, ExpStore,
    GridOutcome, Harness, SimMode, Tier, WarmMode, WarmPool,
};
use rfp_core::{simulate_workload, CoreConfig};

/// Trace length for the end-to-end sweeps (matches the warm_fork bench:
/// long enough for realistic job cost, short enough that five full-grid
/// sweeps stay benchable).
const GRID_LEN: u64 = 32_000;

/// A scratch store rooted in a unique temp directory, removed on drop
/// (the workspace has no tempfile crate — offline build).
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Self {
        Scratch(std::env::temp_dir().join(format!("rfp-store-bench-{}", std::process::id())))
    }

    /// A fresh handle onto the directory, with zeroed traffic counters —
    /// exactly like a new process reopening the store.
    fn open(&self) -> Arc<ExpStore> {
        Arc::new(ExpStore::open(&self.0).expect("scratch store opens"))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Per-entry micro-costs: publishing and serving one result-tier report
/// through the codec + checksum + filesystem path.
fn bench_store_entry(c: &mut Criterion) {
    let scratch = Scratch::new();
    let store = scratch.open();
    let w = rfp_trace::by_name("spec17_mcf").expect("in suite");
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let report = simulate_workload(&cfg, &w, 8_000).expect("valid config");
    let key = result_key(
        8_000,
        4_000,
        SimMode::Full,
        WarmMode::Exact,
        false,
        w.name,
        &cfg,
    );
    let mut g = c.benchmark_group("store");
    g.bench_function("put_result", |b| {
        b.iter(|| black_box(store.put(Tier::Result, &key, &report)))
    });
    store.put(Tier::Result, &key, &report);
    g.bench_function("get_result_hit", |b| {
        b.iter(|| {
            black_box(
                store
                    .get::<rfp_stats::SimReport>(Tier::Result, &key)
                    .expect("hit"),
            )
        })
    });
    g.finish();
}

/// Every distinct config the `experiments all` sweep runs, in plan order.
fn all_plan_configs() -> Vec<CoreConfig> {
    let mut seen = HashSet::new();
    Harness::ALL_IDS
        .iter()
        .flat_map(|id| Harness::plan(id))
        .filter(|c| seen.insert(config_key(c)))
        .collect()
}

/// One-shot measurements written into `BENCH_engine.json`: wall time of
/// the full config inventory with the store off, cold (first run,
/// publishing every tier), warm (second run, every job a disk read), and
/// cold-results-only (result tier dropped, jobs re-simulated from
/// persisted warm snapshots and compiled arenas).
fn bench_store_json(_c: &mut Criterion) {
    let scratch = Scratch::new();
    let configs = all_plan_configs();
    let threads = default_threads();
    let run = |store: Option<Arc<ExpStore>>| {
        let pool = WarmPool::new(WarmMode::Exact, GRID_LEN).with_store(store);
        let t = Instant::now();
        let out = run_grid_pooled(&pool, &configs, threads, false);
        (t.elapsed().as_secs_f64(), out)
    };
    // Interleave the repeated arms (off, warm, cold-snapshots) so host
    // drift over the minutes these sweeps take doesn't land on one mode;
    // a truly cold store exists only once, so that arm is single-shot.
    let (off_a, off_out) = run(None);
    let (cold_secs, cold_out) = run(Some(scratch.open()));
    let (warm_a, warm_out) = run(Some(scratch.open()));
    let (off_b, _) = run(None);
    let (warm_b, _) = run(Some(scratch.open()));
    let snap_store = scratch.open();
    assert!(
        snap_store.clear_tier(Tier::Result) > 0,
        "cold run published"
    );
    let (snap_a, snap_out) = run(Some(snap_store));
    let snap_store = scratch.open();
    snap_store.clear_tier(Tier::Result);
    let (snap_b, _) = run(Some(snap_store));
    let off_secs = off_a.min(off_b);
    let warm_secs = warm_a.min(warm_b);
    let cold_snap_secs = snap_a.min(snap_b);

    // The store is a pure performance feature: every arm byte-identical.
    for (arm, out) in [
        ("cold", &cold_out),
        ("warm", &warm_out),
        ("cold-snapshots", &snap_out),
    ] {
        for (off_row, row) in off_out.reports.iter().zip(&out.reports) {
            for (a, b) in off_row.iter().zip(row) {
                assert_eq!(a.canonical_text(), b.canonical_text(), "{arm} diverged");
                assert_eq!(a.stats, b.stats, "{arm} diverged");
            }
        }
    }
    let hits = |out: &GridOutcome| out.telemetry.iter().filter(|t| t.store == "hit").count();
    assert_eq!(hits(&cold_out), 0, "first run cannot hit");
    assert_eq!(
        hits(&warm_out),
        warm_out.telemetry.len(),
        "second run must serve every job from disk"
    );
    assert_eq!(hits(&snap_out), 0, "cleared results cannot hit");

    // Re-measure disk occupancy with a fresh handle (the last snapshot
    // arm republished the result tier, so all three tiers are full).
    let store = scratch.open();
    let [results, warm, traces] = store.disk_stats();
    let tier_json = |u: rfp_bench::TierUsage| {
        format!("{{ \"entries\": {}, \"bytes\": {} }}", u.entries, u.bytes)
    };
    let jobs = off_out.telemetry.len();
    let section = format!(
        "{{\n    \"trace_len\": {GRID_LEN},\n    \"configs\": {},\n    \"workloads\": {},\n    \"jobs\": {jobs},\n    \"threads\": {threads},\n    \"timing\": \"min of 2 interleaved rounds (off, warm, cold_snap); 1 round (cold)\",\n    \"off_secs\": {off_secs:.3},\n    \"cold_secs\": {cold_secs:.3},\n    \"warm_secs\": {warm_secs:.3},\n    \"cold_snap_secs\": {cold_snap_secs:.3},\n    \"warm_vs_cold_speedup\": {:.3},\n    \"warm_vs_off_speedup\": {:.3},\n    \"cold_snap_vs_off_speedup\": {:.3},\n    \"cold_publish_overhead_frac\": {:.4},\n    \"disk\": {{ \"results\": {}, \"warm\": {}, \"traces\": {} }}\n  }}",
        configs.len(),
        off_out.reports.first().map_or(0, Vec::len),
        cold_secs / warm_secs,
        off_secs / warm_secs,
        off_secs / cold_snap_secs,
        (cold_secs - off_secs) / off_secs,
        tier_json(results),
        tier_json(warm),
        tier_json(traces),
    );

    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine.json"
    ));
    update_bench_json(path, &[("store", section)]).unwrap_or_else(|e| {
        eprintln!("error: write {}: {e}", path.display());
        std::process::exit(2);
    });
    println!(
        "merged store section into {} (off {off_secs:.1}s, cold {cold_secs:.1}s, warm {warm_secs:.1}s, cold+snapshots {cold_snap_secs:.1}s, warm speedup {:.1}x)",
        path.display(),
        cold_secs / warm_secs,
    );
}

criterion_group!(benches, bench_store_entry, bench_store_json);
criterion_main!(benches);
