//! Cost of the run-history ledger: record-parse and append micro-costs,
//! load+trend over a populated ledger, and the end-to-end claim that
//! arming the ledger does not change a sweep's output. Merged into
//! `BENCH_engine.json` under the `history` section. Byte-identity of the
//! recorded sweep's sampling document against the unrecorded reference
//! is asserted before anything is written: the ledger is an observer of
//! the sweep, never a participant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rfp_bench::{
    default_threads, trend_rows, update_bench_json, ExpStore, Harness, HistoryLedger, RunRecord,
    WarmMode, WarmPool,
};
use rfp_core::CoreConfig;
use rfp_stats::TrendParams;

/// Trace length for the end-to-end sweeps (matches the store bench).
const GRID_LEN: u64 = 32_000;

/// Unique scratch ledger root, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        Scratch(std::env::temp_dir().join(format!(
            "rfp-history-bench-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        )))
    }

    fn open(&self) -> Arc<ExpStore> {
        Arc::new(ExpStore::open(&self.0).expect("scratch ledger opens"))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A sampling document shaped exactly like `experiments --sampling-report`
/// output, sized like the real suite, so the micro-benchmarks measure
/// realistic record payloads without paying for a sweep.
fn synthetic_report(workloads: usize) -> String {
    let rows: Vec<String> = (0..workloads)
        .map(|i| {
            format!(
                "{{\"workload\":\"w{i:02}\",\"ipc\":{:.6},\"coverage\":{:.6},\"cycles\":{},\
                 \"cpi\":{{\"base\":0.412000,\"mem\":0.231000,\"rfp_hidden\":0.057000}}}}",
                1.2 + (i as f64) * 0.01,
                0.3 + (i as f64) * 0.002,
                2_000 + i * 13,
            )
        })
        .collect();
    format!(
        "{{\"config_key\":\"00000000deadbeef\",\"len\":{GRID_LEN},\"workloads\":[{}]}}\n",
        rows.join(",")
    )
}

/// Micro-costs: parsing a sweep document into a record, appending it to
/// the ledger (one durable tmp+rename publish), and a full load+gate
/// pass over a 100-run ledger.
fn bench_ledger_micro(c: &mut Criterion) {
    let report = synthetic_report(65);
    c.bench_function("history_record_parse", |b| {
        b.iter(|| {
            black_box(
                RunRecord::from_documents("run", "-", black_box(&report), None, None, None)
                    .expect("synthetic report parses"),
            )
        });
    });
    c.bench_function("history_add", |b| {
        let scratch = Scratch::new("add");
        let ledger = HistoryLedger::new(scratch.open());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let r = RunRecord::from_documents(&format!("run-{i}"), "-", &report, None, None, None)
                .expect("synthetic report parses");
            black_box(ledger.add(r).expect("ledger append"));
        });
    });
    c.bench_function("history_load_trend_100", |b| {
        let scratch = Scratch::new("trend");
        let ledger = HistoryLedger::new(scratch.open());
        for i in 0..100u64 {
            let r = RunRecord::from_documents(&format!("run-{i}"), "-", &report, None, None, None)
                .expect("synthetic report parses");
            ledger.add(r).expect("ledger append");
        }
        let params = TrendParams::default();
        b.iter(|| {
            let view = ledger.load();
            black_box(trend_rows(&view, &[], &params).len())
        });
    });
}

/// End-to-end: the same sweep with the ledger disarmed and armed. The
/// sampling document the armed run records must be byte-identical to the
/// disarmed reference, and the append + gate costs ride into the JSON.
fn bench_history_sweep(_c: &mut Criterion) {
    let threads = default_threads();
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let sweep = || -> (f64, String) {
        let pool = WarmPool::new(WarmMode::Exact, GRID_LEN);
        let mut h = Harness::with_pool(GRID_LEN, threads, pool);
        h.pin_config(&cfg);
        let t0 = Instant::now();
        let report = h.sampling_json(&cfg);
        (t0.elapsed().as_secs_f64(), report)
    };
    let (off_secs, reference) = sweep();
    let (on_secs, recorded) = sweep();
    // The ledger is downstream of the sweep: recording must start from
    // the exact bytes an unrecorded run produces.
    assert_eq!(
        reference, recorded,
        "sweep output must not depend on the ledger"
    );

    let scratch = Scratch::new("sweep");
    let ledger = HistoryLedger::new(scratch.open());
    let t0 = Instant::now();
    for (label, ts) in [("bench-a", "-"), ("bench-b", "-"), ("bench-c", "-")] {
        let r = RunRecord::from_documents(label, ts, &recorded, None, None, None)
            .expect("sweep report parses");
        ledger.add(r).expect("ledger append");
    }
    let add_micros = t0.elapsed().as_secs_f64() * 1e6 / 3.0;
    let t0 = Instant::now();
    let view = ledger.load();
    let rows = trend_rows(&view, &[], &TrendParams::default());
    let trend_micros = t0.elapsed().as_secs_f64() * 1e6;
    assert!(
        rows.iter().all(|(_, v)| !v.regressed),
        "identical runs must gate clean"
    );

    let section = format!(
        "{{\n    \"trace_len\": {GRID_LEN},\n    \"threads\": {threads},\n    \"sweep_off_secs\": {off_secs:.3},\n    \"sweep_on_secs\": {on_secs:.3},\n    \"sweep_output_identical\": true,\n    \"runs_recorded\": 3,\n    \"add_micros_per_run\": {add_micros:.1},\n    \"load_trend_micros\": {trend_micros:.1},\n    \"metric_series\": {}\n  }}",
        rows.len(),
    );
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine.json"
    ));
    update_bench_json(path, &[("history", section)]).unwrap_or_else(|e| {
        eprintln!("error: write {}: {e}", path.display());
        std::process::exit(2);
    });
    println!(
        "merged history section into {} (sweep {off_secs:.2}s vs {on_secs:.2}s, add {add_micros:.0}us/run, trend {trend_micros:.0}us over {} series)",
        path.display(),
        rows.len(),
    );
}

criterion_group!(benches, bench_ledger_micro, bench_history_sweep);
criterion_main!(benches);
