//! Micro-benchmarks of the simulator's substrate components.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rfp_mem::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy};
use rfp_predictors::{PrefetchTable, PrefetchTableConfig, PtDecision};
use rfp_types::{Addr, Pc};

fn bench_cache(c: &mut Criterion) {
    let mut cache = Cache::new(CacheConfig {
        size_bytes: 48 << 10,
        ways: 12,
        latency: 5,
    })
    .expect("valid");
    // Warm a working set.
    for i in 0..512u64 {
        cache.fill(Addr::new(i * 64));
    }
    let mut i = 0u64;
    c.bench_function("cache_access_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.access(Addr::new(i * 64)))
        })
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut mem = MemoryHierarchy::new(HierarchyConfig::tiger_lake()).expect("valid");
    let mut t = 0u64;
    let mut i = 0u64;
    c.bench_function("hierarchy_access_stream", |b| {
        b.iter(|| {
            i += 8;
            t += 3;
            black_box(mem.access(Addr::new(0x10_0000 + (i % 4096)), t, false))
        })
    });
}

fn bench_prefetch_table(c: &mut Criterion) {
    let mut pt = PrefetchTable::new(PrefetchTableConfig {
        confidence_increment_prob: 1.0,
        ..PrefetchTableConfig::default()
    })
    .expect("valid");
    let pc = Pc::new(0x40_0100);
    for i in 0..64u64 {
        pt.on_allocate(pc);
        pt.on_retire(pc, Addr::new(0x1000 + i * 8));
    }
    let mut i = 64u64;
    c.bench_function("prefetch_table_allocate_retire", |b| {
        b.iter(|| {
            i += 1;
            let d = pt.on_allocate(pc);
            pt.on_retire(pc, Addr::new(0x1000 + i * 8));
            black_box(matches!(d, PtDecision::Prefetch(_)))
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let w = rfp_trace::by_name("spec17_gcc").expect("in suite");
    c.bench_function("trace_generation_10k_uops", |b| {
        b.iter(|| {
            let n = w.trace(10_000).filter(|op| op.kind.is_load()).count();
            black_box(n)
        })
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_hierarchy,
    bench_prefetch_table,
    bench_trace_generation
);
criterion_main!(benches);
