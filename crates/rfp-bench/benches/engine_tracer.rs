//! Cost of the engine self-tracer: per-span record/instant micro-costs,
//! and the end-to-end overhead of running a full grid sweep with the
//! tracer disarmed (the default — one branch per span site) and armed.
//! Merged into `BENCH_engine.json` under the `engine_tracer` section.
//! Byte-identity of the armed sweep against the disarmed reference is
//! asserted before anything is written: tracing is observation, never
//! perturbation.

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rfp_bench::{
    default_threads, engine_metrics, engine_trace_json, run_grid_pooled, update_bench_json,
    GridOutcome, WarmMode, WarmPool,
};
use rfp_core::CoreConfig;
use rfp_obs::EngineTracer;

/// Trace length for the end-to-end sweeps (matches the store bench).
const GRID_LEN: u64 = 32_000;

/// Per-span micro-costs through the mutex + vec push path.
fn bench_span_record(c: &mut Criterion) {
    let tracer = EngineTracer::new();
    c.bench_function("tracer_instant", |b| {
        b.iter(|| {
            tracer.instant(
                "store-get",
                black_box("result|spec17_mcf|cfg0".to_string()),
                "hit",
                vec![("bytes", 512)],
                1,
            );
        });
    });
    let t0 = tracer.now_nanos();
    c.bench_function("tracer_record", |b| {
        b.iter(|| {
            tracer.record(
                "simulate",
                black_box("spec17_mcf|cfg0".to_string()),
                "fork",
                vec![("obs", 0)],
                1,
                t0,
            );
        });
    });
    c.bench_function("tracer_deterministic_text_10k", |b| {
        let t = EngineTracer::new();
        for i in 0..10_000u64 {
            t.instant(
                "claim",
                format!("w{}|cfg{}", i % 65, i % 4),
                "claimed",
                vec![("claim", i)],
                1,
            );
        }
        b.iter(|| black_box(t.deterministic_text().len()));
    });
}

/// End-to-end: the same two-config grid disarmed and armed, three
/// interleaved rounds each so thermal drift doesn't land on one arm.
fn bench_tracer_sweep(_c: &mut Criterion) {
    let configs = [
        CoreConfig::tiger_lake(),
        CoreConfig::tiger_lake().with_rfp(),
    ];
    let threads = default_threads();
    let run = |tracer: Option<Arc<EngineTracer>>| -> (f64, GridOutcome, WarmPool) {
        let pool = WarmPool::new(WarmMode::Exact, GRID_LEN).with_tracer(tracer);
        let t0 = Instant::now();
        let out = run_grid_pooled(&pool, &configs, threads, false);
        (t0.elapsed().as_secs_f64(), out, pool)
    };
    let (off_a, off_out, _) = run(None);
    let tracer = Arc::new(EngineTracer::new());
    let (on_a, on_out, on_pool) = run(Some(tracer.clone()));
    let (off_b, _, _) = run(None);
    let (on_b, _, _) = run(Some(Arc::new(EngineTracer::new())));
    let (off_c, _, _) = run(None);
    let (on_c, _, _) = run(Some(Arc::new(EngineTracer::new())));
    let off_secs = off_a.min(off_b).min(off_c);
    let on_secs = on_a.min(on_b).min(on_c);

    // Tracing must be a pure observer: byte-identical reports.
    for (off_row, row) in off_out.reports.iter().zip(&on_out.reports) {
        for (a, b) in off_row.iter().zip(row) {
            assert_eq!(a.canonical_text(), b.canonical_text(), "tracer perturbed");
            assert_eq!(a.stats, b.stats, "tracer perturbed");
        }
    }
    let spans = tracer.spans().len();
    assert!(spans > 0, "armed sweep must record spans");
    let metrics = engine_metrics(&tracer, &on_out.telemetry, &on_pool.stats(), None);
    let doc = engine_trace_json(&tracer, &metrics);

    let section = format!(
        "{{\n    \"trace_len\": {GRID_LEN},\n    \"configs\": {},\n    \"jobs\": {},\n    \"threads\": {threads},\n    \"timing\": \"min of 3 interleaved rounds\",\n    \"off_secs\": {off_secs:.3},\n    \"on_secs\": {on_secs:.3},\n    \"armed_overhead_frac\": {:.4},\n    \"spans\": {spans},\n    \"trace_doc_bytes\": {}\n  }}",
        configs.len(),
        on_out.telemetry.len(),
        (on_secs - off_secs) / off_secs,
        doc.len(),
    );
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine.json"
    ));
    update_bench_json(path, &[("engine_tracer", section)]).unwrap_or_else(|e| {
        eprintln!("error: write {}: {e}", path.display());
        std::process::exit(2);
    });
    println!(
        "merged engine_tracer section into {} (off {off_secs:.2}s, armed {on_secs:.2}s, overhead {:.1}%, {spans} spans)",
        path.display(),
        100.0 * (on_secs - off_secs) / off_secs,
    );
}

criterion_group!(benches, bench_span_record, bench_tracer_sweep);
criterion_main!(benches);
