//! Economics of phase-sampled simulation: what a compiled trace costs to
//! build (vs. regenerating uops from the pattern program), what the arena
//! weighs, and the headline end-to-end number — wall time of the full
//! `experiments all` config inventory under `RFP_SIM_MODE=full` vs.
//! `=sample` at equal thread count — merged into `BENCH_engine.json`
//! under the `sampling` section together with the measured per-metric
//! extrapolation error bounds.

use std::collections::HashSet;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rfp_bench::{
    config_key, default_threads, run_grid_pooled, sampling_error_report_json, sampling_report_json,
    update_bench_json, Harness, SimMode, WarmMode, WarmPool, SAMPLE_INTERVAL_UOPS,
};
use rfp_core::CoreConfig;

/// Trace length for the end-to-end sweep. Twenty full sampling
/// intervals with zero ragged tail: long enough that re-simulating one
/// representative window per phase (plus its warm prefix) is a small
/// fraction of the measured region, short enough that the full-fidelity
/// reference sweep stays benchable.
const GRID_LEN: u64 = 20 * SAMPLE_INTERVAL_UOPS;

/// Every distinct config the `experiments all` sweep runs, in plan order.
fn all_plan_configs() -> Vec<CoreConfig> {
    let mut seen = HashSet::new();
    Harness::ALL_IDS
        .iter()
        .flat_map(|id| Harness::plan(id))
        .filter(|c| seen.insert(config_key(c)))
        .collect()
}

fn bench_compiled_trace(c: &mut Criterion) {
    let w = rfp_trace::by_name("spec17_mcf").expect("in suite");
    let warmup = GRID_LEN / 2;
    let total = GRID_LEN + warmup;
    let mut g = c.benchmark_group("compiled_trace");
    g.sample_size(10);
    g.bench_function("compile_20_intervals", |b| {
        b.iter(|| black_box(w.compiled(total, warmup, SAMPLE_INTERVAL_UOPS)))
    });
    g.bench_function("generate_20_intervals", |b| {
        b.iter(|| black_box(w.trace_vec(total)))
    });
    g.finish();
}

/// One-shot measurements written into `BENCH_engine.json`: compiled-trace
/// build cost per uop (vs. the pattern generator it replaces) and arena
/// weight, then the headline `sampling` numbers — wall time of the full
/// config inventory under full vs. sampled fidelity on this machine's
/// worker count, and the per-metric extrapolation error bounds measured
/// against the full-fidelity reference. Sampled rows are asserted to
/// extrapolate to exactly the measured length before anything is written.
fn bench_sampling_json(_c: &mut Criterion) {
    // Compiled-trace micro-costs for one representative workload.
    let w = rfp_trace::by_name("spec17_mcf").expect("in suite");
    let warmup = GRID_LEN / 2;
    let total = GRID_LEN + warmup;
    const BUILDS: u32 = 10;
    let t0 = Instant::now();
    for _ in 0..BUILDS {
        black_box(w.compiled(total, warmup, SAMPLE_INTERVAL_UOPS));
    }
    let build_ns = t0.elapsed().as_nanos() as f64 / f64::from(BUILDS);
    let t1 = Instant::now();
    for _ in 0..BUILDS {
        black_box(w.trace_vec(total));
    }
    let generate_ns = t1.elapsed().as_nanos() as f64 / f64::from(BUILDS);
    let compiled = w.compiled(total, warmup, SAMPLE_INTERVAL_UOPS);

    // End-to-end: the deduped `experiments all` inventory, one round per
    // fidelity at the same thread count. The margin the sampler wins by
    // dwarfs single-shot wall-time drift, so interleaved min-of-N rounds
    // (as in the warm_fork bench) would only slow the reference sweep.
    let configs = all_plan_configs();
    let threads = default_threads();
    let run_mode = |sim: SimMode| {
        let pool = WarmPool::with_sim(WarmMode::Exact, sim, GRID_LEN);
        let t = Instant::now();
        let out = run_grid_pooled(&pool, &configs, threads, false);
        (t.elapsed().as_secs_f64(), out, pool.stats())
    };
    let (full_secs, _full_out, _) = run_mode(SimMode::Full);
    let (sample_secs, sample_out, sample_stats) = run_mode(SimMode::Sample);

    // Phase weights partition the interval grid, so every sampled row
    // must extrapolate to exactly the measured length.
    for row in &sample_out.reports {
        for r in row {
            assert_eq!(r.stats.retired_uops, GRID_LEN, "bad extrapolation");
        }
    }
    let arm_count = |out: &rfp_bench::GridOutcome, arm: &str| {
        out.telemetry.iter().filter(|t| t.warm == arm).count()
    };

    // Per-metric extrapolation error for the RFP config over the whole
    // suite: full vs. sampled observability runs condensed by the same
    // relative-error formula the `experiments diff` gate uses.
    let rfp_cfg = CoreConfig::tiger_lake().with_rfp();
    let obs_mode = |sim: SimMode| {
        let pool = WarmPool::with_sim(WarmMode::Exact, sim, GRID_LEN);
        let mut out = run_grid_pooled(&pool, std::slice::from_ref(&rfp_cfg), threads, true);
        out.reports.pop().expect("one config in, one row out")
    };
    let full_doc = sampling_report_json(&rfp_cfg, GRID_LEN, &obs_mode(SimMode::Full));
    let sample_doc = sampling_report_json(&rfp_cfg, GRID_LEN, &obs_mode(SimMode::Sample));
    let error_bounds =
        sampling_error_report_json(&full_doc, &sample_doc).expect("well-formed reports");

    let jobs = sample_out.telemetry.len();
    let sampling = format!(
        "{{\n    \"trace_len\": {GRID_LEN},\n    \"interval_uops\": {SAMPLE_INTERVAL_UOPS},\n    \"configs\": {},\n    \"workloads\": {},\n    \"jobs\": {jobs},\n    \"threads\": {threads},\n    \"timing\": \"1 round per fidelity, exact warm mode, equal threads\",\n    \"full_secs\": {full_secs:.3},\n    \"sample_secs\": {sample_secs:.3},\n    \"speedup\": {:.3},\n    \"compiled_build_ns_per_uop\": {:.2},\n    \"generator_ns_per_uop\": {:.2},\n    \"arena_bytes_per_workload\": {},\n    \"sample\": {{ \"forks\": {}, \"transplants\": {}, \"degenerate_full\": {}, \"snapshot_misses\": {} }},\n    \"error_bounds\": {}\n  }}",
        configs.len(),
        sample_out.reports.first().map_or(0, Vec::len),
        full_secs / sample_secs,
        build_ns / total as f64,
        generate_ns / total as f64,
        compiled.arena_bytes(),
        arm_count(&sample_out, "sample-fork"),
        arm_count(&sample_out, "sample-transplant"),
        arm_count(&sample_out, "sample-full"),
        sample_stats.snapshot_misses,
        error_bounds.trim_end(),
    );

    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine.json"
    ));
    update_bench_json(path, &[("sampling", sampling)]).unwrap_or_else(|e| {
        eprintln!("error: write {}: {e}", path.display());
        std::process::exit(2);
    });
    println!(
        "merged sampling section into {} (full {full_secs:.1}s, sample {sample_secs:.1}s, speedup {:.2}x)",
        path.display(),
        full_secs / sample_secs,
    );
}

criterion_group!(benches, bench_compiled_trace, bench_sampling_json);
criterion_main!(benches);
