//! End-to-end simulator throughput under each of the paper's feature
//! configurations (baseline, RFP, value prediction, oracle) — one bench
//! per headline experiment family, so `cargo bench` exercises every
//! table/figure code path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rfp_core::{simulate_workload, CoreConfig, OracleMode, VpMode};
use rfp_predictors::{DlvpConfig, ValuePredictorConfig};

const LEN: u64 = 8_000;

fn configs() -> Vec<(&'static str, CoreConfig)> {
    let mut composite = CoreConfig::tiger_lake();
    composite.vp = VpMode::Composite(ValuePredictorConfig::default(), DlvpConfig::default());
    let mut fused = CoreConfig::tiger_lake().with_rfp();
    fused.vp = VpMode::Eves(ValuePredictorConfig::default());
    vec![
        ("baseline_fig2", CoreConfig::tiger_lake()),
        ("rfp_fig10", CoreConfig::tiger_lake().with_rfp()),
        ("oracle_l1_fig1", CoreConfig::tiger_lake().with_oracle(OracleMode::L1ToRf)),
        ("baseline2x_fig12", CoreConfig::baseline_2x()),
        ("composite_vp_fig15", composite),
        ("vp_plus_rfp_fig15", fused),
    ]
}

fn bench_simulation(c: &mut Criterion) {
    let workload = rfp_trace::by_name("spec17_mcf").expect("in suite");
    let mut g = c.benchmark_group("simulate_8k_uops");
    g.sample_size(10);
    for (name, cfg) in configs() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate_workload(cfg, &workload, LEN).expect("valid")))
        });
    }
    g.finish();
}

fn bench_sensitivity_kernels(c: &mut Criterion) {
    // The Fig. 17/18 sweeps re-run the same kernel with different PT
    // shapes; benchmark the two extremes.
    let workload = rfp_trace::by_name("spec06_gcc").expect("in suite");
    let mut g = c.benchmark_group("pt_sweep_fig17_fig18");
    g.sample_size(10);
    for (name, entries, bits) in [("pt1k_conf1", 1024usize, 1u8), ("pt16k_conf4", 16384, 4)] {
        let mut cfg = CoreConfig::tiger_lake().with_rfp();
        if let Some(r) = cfg.rfp.as_mut() {
            r.table.entries = entries;
            r.table.confidence_bits = bits;
        }
        g.bench_function(name, |b| {
            b.iter(|| black_box(simulate_workload(&cfg, &workload, LEN).expect("valid")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulation, bench_sensitivity_kernels);
criterion_main!(benches);
