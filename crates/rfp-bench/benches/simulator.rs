//! End-to-end simulator throughput under each of the paper's feature
//! configurations (baseline, RFP, value prediction, oracle) — one bench
//! per headline experiment family, so `cargo bench` exercises every
//! table/figure code path — plus the engine benches: the calendar queue
//! against the old `BinaryHeap` event queue, and end-to-end uops/sec
//! through the work-stealing grid, written to `BENCH_engine.json`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rfp_bench::{default_threads, run_grid, update_bench_json};
use rfp_core::{
    simulate_workload, simulate_workload_probed, CalendarQueue, CoreConfig, OracleMode, VpMode,
};
use rfp_obs::{ChromeTraceSink, FlightRecorder, MetricsSink, NoopProbe, ProfileSink};
use rfp_predictors::{DlvpConfig, ValuePredictorConfig};

const LEN: u64 = 8_000;

fn configs() -> Vec<(&'static str, CoreConfig)> {
    let mut composite = CoreConfig::tiger_lake();
    composite.vp = VpMode::Composite(ValuePredictorConfig::default(), DlvpConfig::default());
    let mut fused = CoreConfig::tiger_lake().with_rfp();
    fused.vp = VpMode::Eves(ValuePredictorConfig::default());
    vec![
        ("baseline_fig2", CoreConfig::tiger_lake()),
        ("rfp_fig10", CoreConfig::tiger_lake().with_rfp()),
        (
            "oracle_l1_fig1",
            CoreConfig::tiger_lake().with_oracle(OracleMode::L1ToRf),
        ),
        ("baseline2x_fig12", CoreConfig::baseline_2x()),
        ("composite_vp_fig15", composite),
        ("vp_plus_rfp_fig15", fused),
    ]
}

fn bench_simulation(c: &mut Criterion) {
    let workload = rfp_trace::by_name("spec17_mcf").expect("in suite");
    let mut g = c.benchmark_group("simulate_8k_uops");
    g.sample_size(10);
    for (name, cfg) in configs() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate_workload(cfg, &workload, LEN).expect("valid")))
        });
    }
    g.finish();
}

fn bench_sensitivity_kernels(c: &mut Criterion) {
    // The Fig. 17/18 sweeps re-run the same kernel with different PT
    // shapes; benchmark the two extremes.
    let workload = rfp_trace::by_name("spec06_gcc").expect("in suite");
    let mut g = c.benchmark_group("pt_sweep_fig17_fig18");
    g.sample_size(10);
    for (name, entries, bits) in [("pt1k_conf1", 1024usize, 1u8), ("pt16k_conf4", 16384, 4)] {
        let mut cfg = CoreConfig::tiger_lake().with_rfp();
        if let Some(r) = cfg.rfp.as_mut() {
            r.table.entries = entries;
            r.table.confidence_bits = bits;
        }
        g.bench_function(name, |b| {
            b.iter(|| black_box(simulate_workload(&cfg, &workload, LEN).expect("valid")))
        });
    }
    g.finish();
}

/// Synthetic event stream shaped like the simulator's: mostly near-future
/// wakeups (1–8 cycles out), occasional far DRAM fills. Returns a
/// checksum so the work can't be optimised away.
fn drive_calendar(ops: u64) -> u64 {
    let mut q: CalendarQueue<u64> = CalendarQueue::new();
    let mut sum = 0u64;
    let mut now = 0u64;
    for i in 0..ops {
        let delta = if i % 97 == 0 { 300 } else { 1 + (i % 8) };
        q.push(now + delta, i);
        if i % 2 == 0 {
            now += 1;
            while let Some((_, v)) = q.pop_due(now) {
                sum = sum.wrapping_add(v);
            }
        }
    }
    while !q.is_empty() {
        now += 1;
        while let Some((_, v)) = q.pop_due(now) {
            sum = sum.wrapping_add(v);
        }
    }
    sum
}

/// The pre-calendar event queue: a min-`BinaryHeap` with an insertion
/// counter for FIFO tie-breaks — kept here as the bench reference.
fn drive_heap(ops: u64) -> u64 {
    let mut q: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
    let mut sum = 0u64;
    let mut now = 0u64;
    for i in 0..ops {
        let delta = if i % 97 == 0 { 300 } else { 1 + (i % 8) };
        // `i` doubles as the FIFO insertion counter (it's monotone).
        q.push(Reverse((now + delta, i, i)));
        if i % 2 == 0 {
            now += 1;
            while let Some(&Reverse((at, _, v))) = q.peek() {
                if at > now {
                    break;
                }
                q.pop();
                sum = sum.wrapping_add(v);
            }
        }
    }
    while let Some(Reverse((_, _, v))) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    sum
}

/// The observability layer's cost contract: a `NoopProbe` run must match
/// the plain `simulate_workload` path (the probe monomorphizes away), and
/// the real sinks pay only for what they record.
fn bench_probe_overhead(c: &mut Criterion) {
    let workload = rfp_trace::by_name("spec17_mcf").expect("in suite");
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let mut g = c.benchmark_group("probe_overhead_8k_uops");
    g.sample_size(10);
    g.bench_function("uninstrumented", |b| {
        b.iter(|| black_box(simulate_workload(&cfg, &workload, LEN).expect("valid")))
    });
    g.bench_function("noop_probe", |b| {
        b.iter(|| {
            black_box(simulate_workload_probed(&cfg, &workload, LEN, NoopProbe).expect("valid"))
        })
    });
    g.bench_function("metrics_sink", |b| {
        b.iter(|| {
            black_box(
                simulate_workload_probed(&cfg, &workload, LEN, MetricsSink::new()).expect("valid"),
            )
        })
    });
    g.bench_function("profile_sink", |b| {
        b.iter(|| {
            black_box(
                simulate_workload_probed(&cfg, &workload, LEN, ProfileSink::new()).expect("valid"),
            )
        })
    });
    g.bench_function("chrome_trace_sink", |b| {
        b.iter(|| {
            black_box(
                simulate_workload_probed(
                    &cfg,
                    &workload,
                    LEN,
                    ChromeTraceSink::new(cfg.rob_entries),
                )
                .expect("valid"),
            )
        })
    });
    // Disarmed: the capture window sits past the end of the run, so the
    // recorder pays only its clock/cursor compares and the rename-writer
    // table — the steady-state cost `experiments inspect` rides on.
    g.bench_function("flight_recorder_disarmed", |b| {
        b.iter(|| {
            black_box(
                simulate_workload_probed(
                    &cfg,
                    &workload,
                    LEN,
                    FlightRecorder::new(&[(LEN * 10, LEN * 10 + 1)], 64),
                )
                .expect("valid"),
            )
        })
    });
    // Armed over the whole measured region: the worst case.
    g.bench_function("flight_recorder_armed", |b| {
        b.iter(|| {
            black_box(
                simulate_workload_probed(
                    &cfg,
                    &workload,
                    LEN,
                    FlightRecorder::new(&[(0, LEN)], LEN as usize + 64),
                )
                .expect("valid"),
            )
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    assert_eq!(drive_calendar(10_000), drive_heap(10_000));
    let mut g = c.benchmark_group("event_queue_20k_events");
    g.bench_function("binary_heap", |b| b.iter(|| black_box(drive_heap(20_000))));
    g.bench_function("calendar_queue", |b| {
        b.iter(|| black_box(drive_calendar(20_000)))
    });
    g.finish();
}

fn time_ns(f: impl Fn() -> u64) -> (f64, u64) {
    let t0 = Instant::now();
    let sum = f();
    (t0.elapsed().as_nanos() as f64, sum)
}

/// One-shot engine measurements merged into `BENCH_engine.json` at the
/// workspace root: event-queue ns/op for both implementations and
/// end-to-end uops/sec through the work-stealing grid at 1 thread vs
/// the machine's parallelism (skipped when the machine has one core —
/// comparing a 1-thread grid against itself says nothing).
fn bench_engine_json(_c: &mut Criterion) {
    const OPS: u64 = 200_000;
    let (heap_ns, a) = time_ns(|| drive_heap(OPS));
    let (cal_ns, b) = time_ns(|| drive_calendar(OPS));
    assert_eq!(a, b);

    let grid_len = 4_000;
    let cfg = [CoreConfig::tiger_lake().with_rfp()];
    let uops_of = |rows: &[Vec<rfp_stats::SimReport>]| -> u64 {
        rows.iter()
            .flatten()
            .map(|r| r.stats.total_retired_uops)
            .sum()
    };
    let threads = default_threads();
    let t0 = Instant::now();
    let serial = run_grid(&cfg, grid_len, 1);
    let serial_secs = t0.elapsed().as_secs_f64();
    let uops = uops_of(&serial);
    // The serial-vs-parallel comparison only means something with real
    // parallel hardware behind it.
    let parallel = (threads > 1).then(|| {
        let t1 = Instant::now();
        let parallel = run_grid(&cfg, grid_len, threads);
        let parallel_secs = t1.elapsed().as_secs_f64();
        assert_eq!(uops, uops_of(&parallel));
        parallel_secs
    });

    // Probe-overhead spot check: one-shot timings of the same workload
    // with no probe, the noop probe, and the two real sinks.
    let w = rfp_trace::by_name("spec17_mcf").expect("in suite");
    let probe_len = 20_000u64;
    let probe_cfg = CoreConfig::tiger_lake().with_rfp();
    let time_run = |f: &dyn Fn()| {
        let t = Instant::now();
        f();
        t.elapsed().as_secs_f64()
    };
    let plain_secs = time_run(&|| {
        simulate_workload(&probe_cfg, &w, probe_len).expect("valid");
    });
    let noop_secs = time_run(&|| {
        simulate_workload_probed(&probe_cfg, &w, probe_len, NoopProbe).expect("valid");
    });
    let metrics_secs = time_run(&|| {
        simulate_workload_probed(&probe_cfg, &w, probe_len, MetricsSink::new()).expect("valid");
    });
    let profile_secs = time_run(&|| {
        simulate_workload_probed(&probe_cfg, &w, probe_len, ProfileSink::new()).expect("valid");
    });
    let chrome_secs = time_run(&|| {
        simulate_workload_probed(
            &probe_cfg,
            &w,
            probe_len,
            ChromeTraceSink::new(probe_cfg.rob_entries),
        )
        .expect("valid");
    });
    // Flight recorder: re-measure the plain/noop pair alongside so the
    // "noop cost unchanged" claim in this section is apples-to-apples
    // within one run, then time the disarmed and fully-armed recorder.
    let fr_plain_secs = time_run(&|| {
        simulate_workload(&probe_cfg, &w, probe_len).expect("valid");
    });
    let fr_noop_secs = time_run(&|| {
        simulate_workload_probed(&probe_cfg, &w, probe_len, NoopProbe).expect("valid");
    });
    let fr_disarmed_secs = time_run(&|| {
        simulate_workload_probed(
            &probe_cfg,
            &w,
            probe_len,
            FlightRecorder::new(&[(probe_len * 10, probe_len * 10 + 1)], 64),
        )
        .expect("valid");
    });
    let fr_armed_secs = time_run(&|| {
        simulate_workload_probed(
            &probe_cfg,
            &w,
            probe_len,
            FlightRecorder::new(&[(0, probe_len)], probe_len as usize + 64),
        )
        .expect("valid");
    });

    let event_queue = format!(
        "{{\n    \"ops\": {OPS},\n    \"binary_heap_ns_per_op\": {:.2},\n    \"calendar_ns_per_op\": {:.2},\n    \"speedup\": {:.3}\n  }}",
        heap_ns / OPS as f64,
        cal_ns / OPS as f64,
        heap_ns / cal_ns,
    );
    let parallel_fields = match parallel {
        Some(parallel_secs) => format!(
            "\"parallel_uops_per_sec\": {:.0},\n    \"parallel_speedup\": {:.3}",
            uops as f64 / parallel_secs,
            serial_secs / parallel_secs,
        ),
        None => {
            "\"parallel_uops_per_sec\": null,\n    \"parallel_speedup\": null,\n    \"parallel_comparison\": \"n/a: one hardware thread available\"".to_string()
        }
    };
    let engine = format!(
        "{{\n    \"workloads\": {},\n    \"measured_uops\": {uops},\n    \"threads\": {threads},\n    \"serial_uops_per_sec\": {:.0},\n    {parallel_fields}\n  }}",
        serial.first().map_or(0, Vec::len),
        uops as f64 / serial_secs,
    );
    let probe = format!(
        "{{\n    \"uops\": {probe_len},\n    \"uninstrumented_secs\": {plain_secs:.6},\n    \"noop_probe_secs\": {noop_secs:.6},\n    \"metrics_sink_secs\": {metrics_secs:.6},\n    \"profile_sink_secs\": {profile_secs:.6},\n    \"chrome_trace_sink_secs\": {chrome_secs:.6}\n  }}",
    );
    let flight_recorder = format!(
        "{{\n    \"uops\": {probe_len},\n    \"uninstrumented_secs\": {fr_plain_secs:.6},\n    \"noop_probe_secs\": {fr_noop_secs:.6},\n    \"disarmed_secs\": {fr_disarmed_secs:.6},\n    \"armed_secs\": {fr_armed_secs:.6}\n  }}",
    );
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine.json"
    ));
    update_bench_json(
        path,
        &[
            ("event_queue", event_queue),
            ("engine", engine),
            ("probe", probe),
            ("flight_recorder", flight_recorder),
        ],
    )
    .unwrap_or_else(|e| {
        eprintln!("error: write {}: {e}", path.display());
        std::process::exit(2);
    });
    println!(
        "merged event_queue/engine/probe/flight_recorder sections into {}",
        path.display()
    );
}

criterion_group!(
    benches,
    bench_simulation,
    bench_sensitivity_kernels,
    bench_probe_overhead,
    bench_event_queue,
    bench_engine_json
);
criterion_main!(benches);
