//! Economics of the warm-state snapshot/fork engine: what a snapshot
//! costs to capture, what a fork costs to clone, and what the pool buys
//! end-to-end across the full `experiments all` config inventory —
//! merged into `BENCH_engine.json` under the `warm_state` and
//! `warm_fork` sections.

use std::collections::HashSet;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rfp_bench::{
    config_key, default_threads, run_grid_pooled, update_bench_json, Harness, WarmMode, WarmPool,
};
use rfp_core::{warm_up_workload, CoreConfig};

/// Trace length for the snapshot micro-costs (matches the simulator
/// bench's kernel length; warmup is the engine's len/2 rule).
const CAPTURE_LEN: u64 = 8_000;

/// Trace length for the end-to-end three-mode sweep. Long enough that
/// the warmup a fork skips dwarfs the fixed cost of cloning the warm
/// structures, short enough that three full-grid sweeps stay benchable.
const GRID_LEN: u64 = 32_000;

fn capture_inputs() -> (
    CoreConfig,
    rfp_trace::Workload,
    u64,
    Vec<rfp_trace::MicroOp>,
) {
    let w = rfp_trace::by_name("spec17_mcf").expect("in suite");
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let warmup = CAPTURE_LEN / 2;
    let trace = w.trace_vec(CAPTURE_LEN + warmup);
    (cfg, w, warmup, trace)
}

fn bench_warm_state(c: &mut Criterion) {
    let (cfg, w, warmup, trace) = capture_inputs();
    let mut g = c.benchmark_group("warm_state");
    g.sample_size(10);
    g.bench_function("capture_4k_warmup", |b| {
        b.iter(|| {
            black_box(
                warm_up_workload(&cfg, &w, warmup, trace.iter().cloned()).expect("valid config"),
            )
        })
    });
    let snap = warm_up_workload(&cfg, &w, warmup, trace.iter().cloned()).expect("valid config");
    g.bench_function("fork_clone", |b| b.iter(|| black_box(snap.clone())));
    g.finish();
}

/// Every distinct config the `experiments all` sweep runs, in plan order.
fn all_plan_configs() -> Vec<CoreConfig> {
    let mut seen = HashSet::new();
    Harness::ALL_IDS
        .iter()
        .flat_map(|id| Harness::plan(id))
        .filter(|c| seen.insert(config_key(c)))
        .collect()
}

/// One-shot measurements written into `BENCH_engine.json`: per-snapshot
/// capture/clone cost and bytes, then the headline `warm_fork` number —
/// wall time of the full config inventory under `off` / `exact` /
/// `checkpoint` warm modes on this machine's worker count. The exact
/// rows are asserted byte-identical to the straight-through reference
/// before anything is written.
fn bench_warm_fork_json(_c: &mut Criterion) {
    // Snapshot micro-costs.
    let (cfg, w, warmup, trace) = capture_inputs();
    const CAPTURES: u32 = 10;
    let t0 = Instant::now();
    for _ in 0..CAPTURES {
        black_box(warm_up_workload(&cfg, &w, warmup, trace.iter().cloned()).expect("valid config"));
    }
    let capture_ns = t0.elapsed().as_nanos() as f64 / f64::from(CAPTURES);
    let snap = warm_up_workload(&cfg, &w, warmup, trace.iter().cloned()).expect("valid config");
    const CLONES: u32 = 100;
    let t1 = Instant::now();
    for _ in 0..CLONES {
        black_box(snap.clone());
    }
    let clone_ns = t1.elapsed().as_nanos() as f64 / f64::from(CLONES);
    let warm_state = format!(
        "{{\n    \"warmup_uops\": {warmup},\n    \"capture_ns\": {capture_ns:.0},\n    \"fork_clone_ns\": {clone_ns:.0},\n    \"snapshot_bytes\": {}\n  }}",
        snap.approx_bytes(),
    );

    // End-to-end: the deduped `experiments all` inventory, three modes.
    let configs = all_plan_configs();
    let threads = default_threads();
    let run_mode = |mode: WarmMode| {
        let pool = WarmPool::new(mode, GRID_LEN);
        let t = Instant::now();
        let out = run_grid_pooled(&pool, &configs, threads, false);
        (t.elapsed().as_secs_f64(), out, pool.stats())
    };
    // Two interleaved rounds for the headline off/checkpoint pair, min
    // per mode — single-shot wall times on a shared host drift by a few
    // percent over the minutes these sweeps take, and interleaving keeps
    // that drift from landing on one mode.
    let (off_a, off_out, _) = run_mode(WarmMode::Off);
    let (exact_secs, exact_out, exact_stats) = run_mode(WarmMode::Exact);
    let (ckpt_a, ckpt_out, ckpt_stats) = run_mode(WarmMode::Checkpoint);
    let (off_b, _, _) = run_mode(WarmMode::Off);
    let (ckpt_b, _, _) = run_mode(WarmMode::Checkpoint);
    let off_secs = off_a.min(off_b);
    let ckpt_secs = ckpt_a.min(ckpt_b);

    // Exact mode is a pure performance feature: byte-identical output.
    for (off_row, exact_row) in off_out.reports.iter().zip(&exact_out.reports) {
        for (a, b) in off_row.iter().zip(exact_row) {
            assert_eq!(
                a.canonical_text(),
                b.canonical_text(),
                "exact fork diverged"
            );
            assert_eq!(a.stats, b.stats, "exact fork diverged");
        }
    }
    let arm_count = |out: &rfp_bench::GridOutcome, arm: &str| {
        out.telemetry.iter().filter(|t| t.warm == arm).count()
    };
    let jobs = off_out.telemetry.len();
    let warm_fork = format!(
        "{{\n    \"trace_len\": {GRID_LEN},\n    \"configs\": {},\n    \"workloads\": {},\n    \"jobs\": {jobs},\n    \"threads\": {threads},\n    \"timing\": \"min of 2 interleaved rounds (off, checkpoint); 1 round (exact)\",\n    \"off_secs\": {off_secs:.3},\n    \"exact_secs\": {exact_secs:.3},\n    \"checkpoint_secs\": {ckpt_secs:.3},\n    \"exact_speedup\": {:.3},\n    \"speedup\": {:.3},\n    \"exact\": {{ \"forks\": {}, \"straight\": {}, \"snapshot_hits\": {}, \"snapshot_misses\": {} }},\n    \"checkpoint\": {{ \"forks\": {}, \"transplants\": {}, \"straight\": {}, \"snapshot_hits\": {}, \"snapshot_misses\": {} }}\n  }}",
        configs.len(),
        off_out.reports.first().map_or(0, Vec::len),
        off_secs / exact_secs,
        off_secs / ckpt_secs,
        arm_count(&exact_out, "fork"),
        arm_count(&exact_out, "straight"),
        exact_stats.snapshot_hits,
        exact_stats.snapshot_misses,
        arm_count(&ckpt_out, "fork"),
        arm_count(&ckpt_out, "transplant"),
        arm_count(&ckpt_out, "straight"),
        ckpt_stats.snapshot_hits,
        ckpt_stats.snapshot_misses,
    );

    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine.json"
    ));
    update_bench_json(
        path,
        &[("warm_state", warm_state), ("warm_fork", warm_fork)],
    )
    .unwrap_or_else(|e| {
        eprintln!("error: write {}: {e}", path.display());
        std::process::exit(2);
    });
    println!(
        "merged warm_state/warm_fork sections into {} (off {off_secs:.1}s, exact {exact_secs:.1}s, checkpoint {ckpt_secs:.1}s, speedup {:.2}x)",
        path.display(),
        off_secs / ckpt_secs,
    );
}

criterion_group!(benches, bench_warm_state, bench_warm_fork_json);
criterion_main!(benches);
