//! The work-stealing engine must be a pure performance feature: running
//! the suite on any number of threads yields *byte-identical* reports,
//! in the same order, as a plain serial loop over the suite.

use rfp_bench::{
    run_grid, run_grid_obs, run_grid_pooled, run_suite_with_threads, warm_key, warm_projection,
    SimMode, WarmMode, WarmPool, SAMPLE_INTERVAL_UOPS,
};
use rfp_core::{simulate_workload, CoreConfig};
use rfp_stats::{CpiBucket, CpiReport, ObsMetrics, ProfileReport, SimReport};

const LEN: u64 = 3_000;

fn serial_reference(cfg: &CoreConfig) -> Vec<SimReport> {
    rfp_trace::suite()
        .iter()
        .map(|w| simulate_workload(cfg, w, LEN).expect("valid config"))
        .collect()
}

fn canonical_bytes(reports: &[SimReport]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in reports {
        out.extend_from_slice(r.canonical_text().as_bytes());
        out.push(b'\n');
    }
    out
}

#[test]
fn run_suite_is_byte_identical_at_any_thread_count() {
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let reference = serial_reference(&cfg);
    let reference_bytes = canonical_bytes(&reference);
    for threads in [1, 2, 5, 8] {
        let got = run_suite_with_threads(&cfg, LEN, threads);
        // Structural equality first (wall time is equality-transparent)…
        assert_eq!(got, reference, "threads={threads} diverged");
        // …then the stronger claim: the canonical serialisation is
        // byte-for-byte what the serial loop produces.
        assert_eq!(
            canonical_bytes(&got),
            reference_bytes,
            "threads={threads} canonical bytes diverged"
        );
    }
}

#[test]
fn obs_runs_are_byte_identical_at_any_thread_count() {
    // The instrumented grid must be as deterministic as the plain one:
    // histograms are per-job state, reduced into slots by grid position,
    // so canonical bytes (which include the obs JSON) cannot depend on
    // the thread count or on which worker ran which job.
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let reference = run_grid_obs(std::slice::from_ref(&cfg), LEN, 1)
        .pop()
        .expect("one row");
    assert!(reference.iter().all(|r| r.obs.is_some()));
    // Canonical bytes include the CPI stack too, so the loop below also
    // proves probed CPI runs are thread-count invariant byte-for-byte.
    assert!(reference.iter().all(|r| r.cpi.is_some()));
    assert!(
        reference.iter().any(|r| r
            .obs
            .as_ref()
            .is_some_and(|m| m.rfp_complete_rel_issue.total() > 0)),
        "the suite must produce timeliness samples"
    );
    let reference_bytes = canonical_bytes(&reference);
    for threads in [2, 5, 8] {
        let got = run_grid_obs(std::slice::from_ref(&cfg), LEN, threads)
            .pop()
            .expect("one row");
        assert_eq!(
            canonical_bytes(&got),
            reference_bytes,
            "threads={threads} obs canonical bytes diverged"
        );
    }
}

#[test]
fn merged_histograms_are_order_independent() {
    // Aggregating per-workload sinks must give byte-identical JSON no
    // matter the merge order — the property the work-stealing engine
    // relies on when per-thread results interleave arbitrarily.
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let reports = run_grid_obs(std::slice::from_ref(&cfg), LEN, 4)
        .pop()
        .expect("one row");
    let mut forward = ObsMetrics::default();
    for r in &reports {
        forward.merge(r.obs.as_ref().expect("obs attached"));
    }
    let mut reverse = ObsMetrics::default();
    for r in reports.iter().rev() {
        reverse.merge(r.obs.as_ref().expect("obs attached"));
    }
    assert!(forward.load_use_latency.total() > 0);
    assert_eq!(forward.to_json(), reverse.to_json());
}

#[test]
fn cpi_stacks_conserve_and_merge_order_independently() {
    // The one-bucket-per-slot rule over the real tier-1 grid: for every
    // workload under both headline configs, the stack's slot total is
    // *exactly* `cycles * retire_width` and the retiring buckets count
    // exactly the retired uops. Then the engine's correctness property:
    // per-workload reports merge into the same aggregate in any order.
    let configs = [
        CoreConfig::tiger_lake(),
        CoreConfig::tiger_lake().with_rfp(),
    ];
    let rows = run_grid_obs(&configs, LEN, 4);
    for (cfg, reports) in configs.iter().zip(&rows) {
        let width = cfg.retire_width as u64;
        for r in reports {
            let c = r.cpi.as_ref().expect("cpi attached");
            assert_eq!(
                c.stack.total(),
                r.stats.cycles * width,
                "{}: slots leaked or double-charged",
                r.workload
            );
            assert!(c.intervals_consistent(), "{}: interval drift", r.workload);
            // One retiring slot per retired uop — up to the warmup
            // boundary: uops retiring after the mid-cycle stats reset
            // count toward `retired_uops`, but the reset cycle itself
            // belongs to the discarded window, so at most `width - 1`
            // retires go unslotted.
            let retiring =
                c.stack.get(CpiBucket::Retiring) + c.stack.get(CpiBucket::RetiringRfpHidden);
            assert!(
                retiring <= r.stats.retired_uops && r.stats.retired_uops - retiring < width,
                "{}: retiring slots {retiring} vs retired uops {}",
                r.workload,
                r.stats.retired_uops
            );
        }
        let mut forward = CpiReport::default();
        for r in reports {
            forward.merge(r.cpi.as_ref().expect("cpi attached"));
        }
        let mut reverse = CpiReport::default();
        for r in reports.iter().rev() {
            reverse.merge(r.cpi.as_ref().expect("cpi attached"));
        }
        assert!(forward.stack.total() > 0);
        assert_eq!(forward, reverse);
        assert_eq!(forward.to_json(), reverse.to_json());
    }
}

#[test]
fn profiles_merge_order_independently_and_reconcile() {
    // The per-site profiler inherits the engine's merge contract: the
    // per-workload reports combine into one suite profile whose JSON and
    // collapsed stacks are byte-identical in any merge order, and whose
    // sums reconcile exactly with the aggregate counters (the tentpole
    // cross-check, here exercised over the real grid).
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let reports = run_grid_obs(std::slice::from_ref(&cfg), LEN, 4)
        .pop()
        .expect("one row");
    assert!(reports.iter().all(|r| r.profile.is_some()));
    let mut forward = ProfileReport::default();
    for r in &reports {
        forward.merge(r.profile.as_ref().expect("profile attached"));
    }
    let mut reverse = ProfileReport::default();
    for r in reports.iter().rev() {
        reverse.merge(r.profile.as_ref().expect("profile attached"));
    }
    assert!(forward.site_count() > 0);
    assert_eq!(forward, reverse);
    assert_eq!(forward.to_json(), reverse.to_json());
    assert_eq!(forward.collapsed(), reverse.collapsed());
    // Reconciliation over the merged suite (panics on mismatch).
    let reconciled = rfp_bench::Harness::reconcile_profile(&reports);
    assert_eq!(reconciled, forward);
}

#[test]
fn profiles_are_identical_at_any_thread_count() {
    // Structural thread invariance of the profiler, at the counts the CI
    // matrix uses.
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let reference = run_grid_obs(std::slice::from_ref(&cfg), LEN, 1)
        .pop()
        .expect("one row");
    for threads in [2, 8] {
        let got = run_grid_obs(std::slice::from_ref(&cfg), LEN, threads)
            .pop()
            .expect("one row");
        for (a, b) in reference.iter().zip(&got) {
            assert_eq!(
                a.profile, b.profile,
                "{}: profile diverged at {threads} threads",
                a.workload
            );
        }
    }
}

#[test]
fn cpi_reports_are_identical_at_any_thread_count() {
    // Structural (not just textual) thread invariance of the CPI layer,
    // at the counts the CI matrix uses.
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let reference = run_grid_obs(std::slice::from_ref(&cfg), LEN, 1)
        .pop()
        .expect("one row");
    for threads in [2, 8] {
        let got = run_grid_obs(std::slice::from_ref(&cfg), LEN, threads)
            .pop()
            .expect("one row");
        for (a, b) in reference.iter().zip(&got) {
            assert_eq!(
                a.cpi, b.cpi,
                "{}: cpi diverged at {threads} threads",
                a.workload
            );
        }
    }
}

#[test]
fn obs_instrumentation_does_not_perturb_the_simulation() {
    // Same grid with and without sinks: every deterministic counter must
    // match exactly (the probe is observation, never back-pressure).
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let plain = run_grid(std::slice::from_ref(&cfg), LEN, 4)
        .pop()
        .expect("one row");
    let probed = run_grid_obs(std::slice::from_ref(&cfg), LEN, 4)
        .pop()
        .expect("one row");
    for (p, o) in plain.iter().zip(&probed) {
        assert_eq!(
            p.stats, o.stats,
            "{} diverged under instrumentation",
            p.workload
        );
    }
}

#[test]
fn grid_rows_are_independent_of_sibling_configs() {
    // A config's row must not change because it shared a grid with other
    // configs (no cross-job state leaks through the engine).
    let base = CoreConfig::tiger_lake();
    let rfp = CoreConfig::tiger_lake().with_rfp();
    let alone = run_grid(std::slice::from_ref(&base), LEN, 4)
        .pop()
        .expect("one row");
    let paired = run_grid(&[rfp, base.clone()], LEN, 3);
    assert_eq!(paired[1], alone);
}

#[test]
fn warm_forks_are_byte_identical_to_straight_through() {
    // The non-negotiable invariant of the snapshot/fork engine: a run
    // forked from a shared warm snapshot is byte-identical to paying the
    // warmup itself — at every thread count, with and without probes.
    // The two configs differ only in a warmup-inert field (the seed is
    // unused without EPP), so they share one projection and the exact
    // pool serves both columns from a single snapshot per workload.
    let a = CoreConfig::tiger_lake().with_rfp();
    let mut b = a.clone();
    b.seed ^= 0x5eed;
    assert_eq!(warm_key(&a), warm_key(&b), "must share a projection");
    let configs = [a, b];
    let len = 1_500;
    for collect_obs in [false, true] {
        let reference =
            run_grid_pooled(&WarmPool::new(WarmMode::Off, len), &configs, 1, collect_obs);
        let reference_bytes: Vec<Vec<u8>> = reference
            .reports
            .iter()
            .map(|r| canonical_bytes(r))
            .collect();
        for threads in [1, 2, 8] {
            let pool = WarmPool::new(WarmMode::Exact, len);
            let got = run_grid_pooled(&pool, &configs, threads, collect_obs);
            assert!(
                got.telemetry.iter().all(|t| t.warm == "fork"),
                "threads={threads} obs={collect_obs}: every job must fork"
            );
            for (row, (g, r)) in got.reports.iter().zip(&reference_bytes).enumerate() {
                assert_eq!(
                    &canonical_bytes(g),
                    r,
                    "threads={threads} obs={collect_obs} row={row}: fork diverged"
                );
            }
            let stats = pool.stats();
            assert!(
                stats.snapshot_hits > 0 && stats.snapshot_misses > 0,
                "the pool must actually have shared snapshots"
            );
        }
    }
}

#[test]
fn sampled_runs_are_byte_identical_at_any_thread_count_and_probe_setting() {
    // Phase sampling is an approximation of full fidelity, but it must be
    // a *deterministic* approximation: the sampled grid's canonical bytes
    // cannot depend on the thread count, and attaching probes cannot
    // perturb the extrapolated counters. Two configs sharing one warm
    // twin exercise the transplant path; the ragged tail keeps the exact
    // tail-interval machinery in play.
    let configs = [
        CoreConfig::tiger_lake(),
        CoreConfig::tiger_lake().with_rfp(),
    ];
    let len = 2 * SAMPLE_INTERVAL_UOPS + 1024;
    let reference = run_grid_pooled(
        &WarmPool::with_sim(WarmMode::Exact, SimMode::Sample, len),
        &configs,
        1,
        false,
    );
    // The baseline is its own warm twin (resume path); the RFP config
    // transplants the twin's caches into a fresh core. Both sampled
    // paths are in play in this grid.
    for t in &reference.telemetry {
        assert!(
            t.warm == "sample-fork" || t.warm == "sample-transplant",
            "unexpected warm path {:?}",
            t.warm
        );
    }
    assert!(reference.telemetry.iter().any(|t| t.warm == "sample-fork"));
    assert!(reference
        .telemetry
        .iter()
        .any(|t| t.warm == "sample-transplant"));
    let reference_bytes: Vec<Vec<u8>> = reference
        .reports
        .iter()
        .map(|r| canonical_bytes(r))
        .collect();
    for threads in [2, 8] {
        for collect_obs in [false, true] {
            let got = run_grid_pooled(
                &WarmPool::with_sim(WarmMode::Exact, SimMode::Sample, len),
                &configs,
                threads,
                collect_obs,
            );
            for (row, (g, r)) in got.reports.iter().zip(&reference_bytes).enumerate() {
                if collect_obs {
                    // Probed reports carry extra payloads, so compare the
                    // deterministic counters structurally instead.
                    for (a, b) in g.iter().zip(&reference.reports[row]) {
                        assert_eq!(
                            a.stats, b.stats,
                            "threads={threads} row={row}: probes perturbed sampling"
                        );
                    }
                } else {
                    assert_eq!(
                        &canonical_bytes(g),
                        r,
                        "threads={threads} row={row}: sampled run diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn sampled_single_config_grid_forks_its_own_twin() {
    // The baseline config *is* its own warm twin, so the sampler resumes
    // its snapshot in place instead of transplanting — and that path must
    // be just as thread-invariant as the transplant path.
    let cfg = CoreConfig::tiger_lake();
    let len = 3 * SAMPLE_INTERVAL_UOPS;
    let reference = run_grid_pooled(
        &WarmPool::with_sim(WarmMode::Exact, SimMode::Sample, len),
        std::slice::from_ref(&cfg),
        1,
        false,
    );
    assert!(
        reference.telemetry.iter().all(|t| t.warm == "sample-fork"),
        "a config that is its own twin must stay on the in-place resume path"
    );
    let reference_bytes = canonical_bytes(&reference.reports[0]);
    for threads in [2, 8] {
        let got = run_grid_pooled(
            &WarmPool::with_sim(WarmMode::Exact, SimMode::Sample, len),
            std::slice::from_ref(&cfg),
            threads,
            false,
        );
        assert_eq!(
            canonical_bytes(&got.reports[0]),
            reference_bytes,
            "threads={threads}: sampled fork run diverged"
        );
    }
}

#[test]
fn engine_spans_are_deterministic_across_threads_and_warm_modes() {
    // The engine self-tracer's deterministic stratum — the sorted
    // (kind, key, outcome, fields) multiset — must be byte-identical at
    // every thread count, in every warm mode. Timing and lanes are
    // excluded by construction, so this holds even though span arrival
    // order and durations differ wildly between runs.
    use rfp_obs::EngineTracer;
    use std::sync::Arc;
    let a = CoreConfig::tiger_lake().with_rfp();
    let mut b = a.clone();
    b.seed ^= 0x5eed;
    let configs = [a, b];
    let len = 1_500;
    for mode in [WarmMode::Off, WarmMode::Exact, WarmMode::Checkpoint] {
        let mut reference: Option<String> = None;
        for threads in [1, 2, 8] {
            let tracer = Arc::new(EngineTracer::new());
            let pool = WarmPool::new(mode, len).with_tracer(Some(tracer.clone()));
            let _ = run_grid_pooled(&pool, &configs, threads, false);
            assert_eq!(tracer.dropped(), 0);
            let text = tracer.deterministic_text();
            assert!(text.contains("claim "), "{mode:?}: no claim spans");
            assert!(text.contains("simulate "), "{mode:?}: no simulate spans");
            assert!(text.contains("reduce grid ok"), "{mode:?}: no reduce span");
            if mode != WarmMode::Off {
                assert!(
                    text.contains("trace-compile ") && text.contains("warm-capture "),
                    "{mode:?}: pool spans missing"
                );
            }
            match &reference {
                None => reference = Some(text),
                Some(r) => assert_eq!(&text, r, "{mode:?} threads={threads}: span text diverged"),
            }
        }
    }
}

#[test]
fn engine_trace_json_parses_and_report_renders_deterministically() {
    // End-to-end over a real grid: the Chrome-trace document must parse
    // under the repo's own JSON parser with the engineMetrics summary
    // embedded, and the HTML dashboard folding it must be
    // byte-deterministic with balanced structure.
    use rfp_bench::{engine_metrics, engine_trace_json, parse_json, render_report, ReportInputs};
    use rfp_obs::EngineTracer;
    use std::sync::Arc;
    // Two configs sharing warm projections: with a single config no
    // snapshot key repeats, so the planner sends every job down the
    // straight path and nothing is ever captured.
    let a = CoreConfig::tiger_lake().with_rfp();
    let mut b = a.clone();
    b.seed ^= 0x5eed;
    let configs = [a, b];
    let tracer = Arc::new(EngineTracer::new());
    let pool = WarmPool::new(WarmMode::Exact, LEN).with_tracer(Some(tracer.clone()));
    let outcome = run_grid_pooled(&pool, &configs, 4, false);
    let metrics = engine_metrics(&tracer, &outcome.telemetry, &pool.stats(), None);
    assert_eq!(metrics.jobs, outcome.telemetry.len() as u64);
    assert!(metrics.snapshot_misses > 0);
    let doc = engine_trace_json(&tracer, &metrics);
    let parsed = parse_json(&doc).expect("engine trace must be valid JSON");
    let flat = rfp_bench::flatten(&parsed);
    assert!(flat.keys().any(|k| k.starts_with("traceEvents")));
    assert!(flat.contains_key("otherData.engineMetrics.jobs"));
    assert!(flat.contains_key("otherData.engineMetrics.timing.workers"));
    let inputs = ReportInputs {
        engine_trace: Some(doc),
        telemetry: Some(rfp_bench::telemetry_jsonl(&outcome.telemetry)),
        ..Default::default()
    };
    let html = render_report(&inputs).expect("report renders");
    assert_eq!(html, render_report(&inputs).expect("report renders"));
    assert!(html.contains("<section id=\"engine\">"));
    assert_eq!(
        html.matches("<section").count(),
        html.matches("</section>").count()
    );
    assert!(html.contains(&format!("{} telemetry rows.", outcome.telemetry.len())));
}

mod persistent_store {
    //! The persistent experiment store must be invisible in the output:
    //! a sweep with the store off, cold (publishing) or warm (serving
    //! every job from disk) produces byte-identical canonical reports at
    //! every thread count and probe setting — and a vandalised store
    //! degrades to misses, never to wrong answers.

    use super::*;
    use rfp_bench::{ExpStore, Tier};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Unique scratch store root, removed on drop (pass or fail).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            Scratch(std::env::temp_dir().join(format!(
                "rfp-store-it-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            )))
        }

        /// A fresh handle onto the same directory — zeroed in-memory
        /// counters, exactly like a new process reopening the store.
        fn open(&self) -> Arc<ExpStore> {
            Arc::new(ExpStore::open(&self.0).expect("scratch store opens"))
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn store_off_cold_and_warm_runs_are_byte_identical() {
        let scratch = Scratch::new("matrix");
        let configs = [
            CoreConfig::tiger_lake(),
            CoreConfig::tiger_lake().with_rfp(),
        ];
        let len = 1_500;
        for collect_obs in [false, true] {
            let reference = run_grid_pooled(
                &WarmPool::new(WarmMode::Exact, len),
                &configs,
                1,
                collect_obs,
            );
            assert!(
                reference.telemetry.iter().all(|t| t.store == "off"),
                "a pool without a store must tag jobs store=off"
            );
            let reference_bytes: Vec<Vec<u8>> = reference
                .reports
                .iter()
                .map(|r| canonical_bytes(r))
                .collect();
            let check = |reports: &[Vec<SimReport>], tag: &str| {
                for (row, (g, r)) in reports.iter().zip(&reference_bytes).enumerate() {
                    assert_eq!(
                        &canonical_bytes(g),
                        r,
                        "{tag} obs={collect_obs} row={row}: store changed the output"
                    );
                }
            };
            // Cold: every result is a miss, simulated and published.
            let pool = WarmPool::new(WarmMode::Exact, len).with_store(Some(scratch.open()));
            let cold = run_grid_pooled(&pool, &configs, 2, collect_obs);
            assert!(
                cold.telemetry
                    .iter()
                    .all(|t| t.store == "miss" && t.store_bytes_written > 0),
                "obs={collect_obs}: a cold run must publish every result"
            );
            check(&cold.reports, "cold");
            // Warm: every job is a disk read; nothing simulates, no
            // arena recompiles — at every thread count the CI matrix uses.
            for threads in [1, 2, 8] {
                let pool = WarmPool::new(WarmMode::Exact, len).with_store(Some(scratch.open()));
                let warm = run_grid_pooled(&pool, &configs, threads, collect_obs);
                assert!(
                    warm.telemetry
                        .iter()
                        .all(|t| t.store == "hit" && t.warm == "store"),
                    "threads={threads} obs={collect_obs}: warm run must serve from disk"
                );
                assert_eq!(pool.stats().trace_builds, 0, "no arena rebuilds on hits");
                check(&warm.reports, &format!("warm t{threads}"));
            }
            // Drop the result tier only: jobs re-simulate, but forked
            // from warm snapshots and compiled arenas *deserialized from
            // disk* — the end-to-end proof that a persisted snapshot
            // resumes bit-equal to the in-memory fork it was built from.
            let store = scratch.open();
            assert!(store.clear_tier(Tier::Result) > 0);
            let pool = WarmPool::new(WarmMode::Exact, len).with_store(Some(store.clone()));
            let resnap = run_grid_pooled(&pool, &configs, 2, collect_obs);
            assert!(
                resnap
                    .telemetry
                    .iter()
                    .all(|t| t.store == "miss" && t.warm == "fork"),
                "obs={collect_obs}: cleared results must re-simulate via forks"
            );
            let s = store.stats();
            assert!(s.hits > 0, "snapshot/arena tiers must serve the re-run");
            assert_eq!(s.corrupt, 0);
            assert_eq!(
                pool.stats().trace_builds,
                0,
                "compiled arenas must come from disk, not recompilation"
            );
            check(&resnap.reports, "persisted-snapshot");
        }
    }

    #[test]
    fn store_round_trips_unwarmed_and_sampled_grids() {
        // The result key embeds the warm and sim modes, so one directory
        // serves all four runs here without cross-talk — and the
        // byte-identity contract holds per mode.
        let scratch = Scratch::new("modes");
        let configs = [
            CoreConfig::tiger_lake(),
            CoreConfig::tiger_lake().with_rfp(),
        ];
        for (mode, sim, len) in [
            (WarmMode::Off, SimMode::Full, 1_500),
            (
                WarmMode::Exact,
                SimMode::Sample,
                2 * SAMPLE_INTERVAL_UOPS + 1024,
            ),
        ] {
            let reference =
                run_grid_pooled(&WarmPool::with_sim(mode, sim, len), &configs, 1, false);
            let reference_bytes: Vec<Vec<u8>> = reference
                .reports
                .iter()
                .map(|r| canonical_bytes(r))
                .collect();
            let cold_pool = WarmPool::with_sim(mode, sim, len).with_store(Some(scratch.open()));
            let cold = run_grid_pooled(&cold_pool, &configs, 2, false);
            assert!(cold.telemetry.iter().all(|t| t.store == "miss"));
            let warm_pool = WarmPool::with_sim(mode, sim, len).with_store(Some(scratch.open()));
            let warm = run_grid_pooled(&warm_pool, &configs, 8, false);
            assert!(
                warm.telemetry
                    .iter()
                    .all(|t| t.store == "hit" && t.warm == "store"),
                "{mode:?}/{sim:?}: second run must be all hits"
            );
            for (tag, outcome) in [("cold", &cold), ("warm", &warm)] {
                for (row, (g, r)) in outcome.reports.iter().zip(&reference_bytes).enumerate() {
                    assert_eq!(
                        &canonical_bytes(g),
                        r,
                        "{mode:?}/{sim:?} {tag} row={row} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn corrupted_store_entries_degrade_to_misses_with_identical_results() {
        let scratch = Scratch::new("corrupt");
        let configs = [CoreConfig::tiger_lake().with_rfp()];
        let len = 1_500;
        let reference = run_grid_pooled(&WarmPool::new(WarmMode::Exact, len), &configs, 1, false);
        let reference_bytes: Vec<Vec<u8>> = reference
            .reports
            .iter()
            .map(|r| canonical_bytes(r))
            .collect();
        let fill = WarmPool::new(WarmMode::Exact, len).with_store(Some(scratch.open()));
        let _ = run_grid_pooled(&fill, &configs, 2, false);
        // Vandalise three quarters of every tier — truncation, a body
        // bit-flip, and a version-byte flip — leaving every fourth entry
        // intact so hits and misses coexist in one run.
        let mut damaged = 0u64;
        for tier in Tier::ALL {
            let mut files: Vec<PathBuf> = std::fs::read_dir(scratch.0.join(tier.dir()))
                .expect("tier dir")
                .map(|e| e.expect("dir entry").path())
                .collect();
            files.sort();
            for (i, path) in files.iter().enumerate() {
                let mut bytes = std::fs::read(path).expect("entry readable");
                match i % 4 {
                    0 => continue, // intact → must still hit
                    1 => bytes.truncate(bytes.len() / 2),
                    2 => bytes[MAGIC_LEN] ^= 0xff, // version skew, stale checksum
                    _ => {
                        let mid = bytes.len() / 2;
                        bytes[mid] ^= 0x40;
                    }
                }
                std::fs::write(path, bytes).expect("vandalism writable");
                damaged += 1;
            }
        }
        assert!(damaged > 0, "the fill run must have populated the store");
        let store = scratch.open();
        let pool = WarmPool::new(WarmMode::Exact, len).with_store(Some(store.clone()));
        let got = run_grid_pooled(&pool, &configs, 8, false);
        for (row, (g, r)) in got.reports.iter().zip(&reference_bytes).enumerate() {
            assert_eq!(
                &canonical_bytes(g),
                r,
                "row={row}: corruption leaked into the results"
            );
        }
        let s = store.stats();
        assert!(s.corrupt > 0, "vandalised entries must be counted corrupt");
        assert!(s.hits > 0, "intact entries must still hit");
        assert!(got.telemetry.iter().any(|t| t.store == "hit"));
        assert!(got.telemetry.iter().any(|t| t.store == "miss"));
        // Misses republished over the vandalism, so the store healed: a
        // fresh pass is all hits again and clean of corruption.
        let healed_store = scratch.open();
        let healed_pool =
            WarmPool::new(WarmMode::Exact, len).with_store(Some(healed_store.clone()));
        let healed = run_grid_pooled(&healed_pool, &configs, 2, false);
        assert!(healed.telemetry.iter().all(|t| t.store == "hit"));
        assert_eq!(healed_store.stats().corrupt, 0);
        for (row, (g, r)) in healed.reports.iter().zip(&reference_bytes).enumerate() {
            assert_eq!(&canonical_bytes(g), r, "row={row}: healed run diverged");
        }
    }

    #[test]
    fn history_show_and_trend_are_byte_identical_across_threads_and_store_states() {
        // The run-history ledger records only the deterministic stratum
        // of a sweep, so `history show` and `trend` over records produced
        // at any thread count, with the store off, cold or warm, must
        // render byte-identical text. Host timings ride along in the
        // records but are quarantined out of everything rendered here.
        use rfp_bench::{render_history_show, Harness, HistoryLedger, RunRecord};
        use rfp_stats::{render_trend_table, TrendParams};
        let len = 1_500;
        let cfg = CoreConfig::tiger_lake().with_rfp();
        let record_text = |pool: WarmPool, threads: usize| -> (String, String) {
            let mut h = Harness::with_pool(len, threads, pool);
            h.pin_config(&cfg);
            let report = h.sampling_json(&cfg);
            // Two records from the same sweep in a fresh ledger: `show`
            // exercises the full canonical text, `trend` the gating math
            // (a flat two-point series must come out clean).
            let scratch = Scratch::new("hist-ledger");
            let ledger = HistoryLedger::new(scratch.open());
            for (label, ts) in [("run-a", "-"), ("run-b", "2026-08-09")] {
                let r = RunRecord::from_documents(label, ts, &report, None, None, None)
                    .expect("sweep report parses");
                ledger.add(r).expect("ledger append");
            }
            let view = ledger.load();
            let show = render_history_show(&view);
            let trend =
                render_trend_table(&rfp_bench::trend_rows(&view, &[], &TrendParams::default()));
            (show, trend)
        };
        // One shared store, pre-filled so the "warm" arm is all hits.
        let warm_scratch = Scratch::new("hist-warm");
        {
            let pool = WarmPool::new(WarmMode::Exact, len).with_store(Some(warm_scratch.open()));
            let mut h = Harness::with_pool(len, 2, pool);
            h.pin_config(&cfg);
            let _ = h.sampling_json(&cfg);
        }
        let mut reference: Option<(String, String)> = None;
        for threads in [1, 2, 8] {
            for state in ["off", "cold", "warm"] {
                let cold_scratch = Scratch::new("hist-cold");
                let pool = match state {
                    "off" => WarmPool::new(WarmMode::Exact, len),
                    "cold" => {
                        WarmPool::new(WarmMode::Exact, len).with_store(Some(cold_scratch.open()))
                    }
                    _ => WarmPool::new(WarmMode::Exact, len).with_store(Some(warm_scratch.open())),
                };
                let got = record_text(pool, threads);
                assert!(
                    got.0.contains("2 run(s)"),
                    "{state} t{threads}: both records must land"
                );
                assert!(
                    got.1.ends_with("no regressions\n"),
                    "{state} t{threads}: a flat series must gate clean"
                );
                match &reference {
                    None => reference = Some(got),
                    Some(r) => {
                        assert_eq!(&got, r, "{state} t{threads}: ledger rendering diverged")
                    }
                }
            }
        }
    }

    #[test]
    fn engine_spans_are_deterministic_across_store_states_and_threads() {
        // Store traffic spans key on content addresses, so their
        // deterministic stratum is thread-invariant for a fixed store
        // state: cold runs (fresh directory per thread count) agree with
        // each other, warm runs (one shared fill) agree with each other,
        // and the two strata differ (miss/publish vs hit).
        use rfp_obs::EngineTracer;
        let configs = [
            CoreConfig::tiger_lake(),
            CoreConfig::tiger_lake().with_rfp(),
        ];
        let len = 1_500;
        let run = |store: Arc<ExpStore>, threads: usize| -> String {
            let tracer = Arc::new(EngineTracer::new());
            let pool = WarmPool::new(WarmMode::Exact, len)
                .with_store(Some(store))
                .with_tracer(Some(tracer.clone()));
            let _ = run_grid_pooled(&pool, &configs, threads, false);
            tracer.deterministic_text()
        };
        let mut cold_ref: Option<String> = None;
        for threads in [1, 2, 8] {
            let scratch = Scratch::new(&format!("span-cold-t{threads}"));
            let text = run(scratch.open(), threads);
            assert!(text.contains("store-get result|"));
            assert!(text.contains("store-put result|"));
            assert!(text.contains("store-get warm|"));
            assert!(text.contains("store-get trace|"));
            match &cold_ref {
                None => cold_ref = Some(text),
                Some(r) => assert_eq!(&text, r, "cold threads={threads} diverged"),
            }
        }
        let scratch = Scratch::new("span-warm");
        {
            let pool = WarmPool::new(WarmMode::Exact, len).with_store(Some(scratch.open()));
            let _ = run_grid_pooled(&pool, &configs, 2, false);
        }
        let mut warm_ref: Option<String> = None;
        for threads in [1, 2, 8] {
            let text = run(scratch.open(), threads);
            assert!(text.contains(" hit "), "warm run must hit the store");
            match &warm_ref {
                None => warm_ref = Some(text),
                Some(r) => assert_eq!(&text, r, "warm threads={threads} diverged"),
            }
        }
        assert_ne!(cold_ref, warm_ref, "cold and warm strata must differ");
    }

    /// Byte offset of the schema-version word in an entry (after the
    /// magic), for the version-skew vandalism arm.
    const MAGIC_LEN: usize = 8;
}

mod compiled_trace_fidelity {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The compiled arena is a pure pre-resolution of the pattern
        /// generator: for any workload in the suite, any seed override
        /// and any length, the uop stream must be identical op for op.
        #[test]
        fn compiled_arena_matches_the_generator(
            wi in 0usize..65,
            seed in any::<u64>(),
            len in 1u64..6000,
        ) {
            let suite = rfp_trace::suite();
            prop_assume!(wi < suite.len());
            let mut w = suite[wi].clone();
            w.seed = seed;
            let compiled = w.compiled(len, len / 2, 1024);
            prop_assert_eq!(compiled.ops(), &w.trace_vec(len)[..]);
        }
    }
}

#[test]
fn compiled_arena_matches_the_generator_for_every_suite_workload() {
    // The proptest above samples; this nails the exact shipped suite at
    // its shipped seeds, every family, byte for byte.
    for w in rfp_trace::suite() {
        let len = 4096;
        let compiled = w.compiled(len, len / 2, SAMPLE_INTERVAL_UOPS);
        assert_eq!(
            compiled.ops(),
            &w.trace_vec(len)[..],
            "{}: compiled arena diverged from the generator",
            w.name
        );
    }
}

#[test]
fn warmup_relevant_fields_change_the_snapshot_key() {
    // Negative guard on the projection rule: any field that can shape
    // warm state must survive into the snapshot key. If a refactor
    // accidentally normalizes one of these, two configs that warm up
    // differently would silently share a snapshot.
    let base = CoreConfig::tiger_lake().with_rfp();
    let key = warm_key(&base);
    let mut l1 = base.clone();
    l1.mem.l1.size_bytes *= 2;
    let mut lat = base.clone();
    lat.mem.l1.latency += 1;
    let mut rob = base.clone();
    rob.rob_entries += 16;
    let mut bm = base.clone();
    bm.branch_mode = rfp_core::BranchMode::Gshare;
    let mut pf = base.clone();
    pf.l1_ip_prefetcher = false;
    let mut pt = base.clone();
    if let Some(r) = pt.rfp.as_mut() {
        r.table.entries *= 2;
    }
    for (name, cfg) in [
        ("L1 size", &l1),
        ("L1 latency", &lat),
        ("ROB entries", &rob),
        ("branch mode", &bm),
        ("L1 IP prefetcher", &pf),
        ("PT entries", &pt),
    ] {
        assert_ne!(warm_key(cfg), key, "{name} shapes warmup and must re-key");
    }
}

#[test]
fn projection_normalizes_only_provably_inert_fields() {
    let base = CoreConfig::tiger_lake().with_rfp();
    let key = warm_key(&base);
    // Inert under the base config (VP off, critical_only off): the EPP
    // false-positive rate, the criticality threshold, and the VP filter.
    let mut fp = base.clone();
    fp.epp_false_positive_rate = 0.5;
    let mut th = base.clone();
    if let Some(r) = th.rfp.as_mut() {
        r.criticality_threshold = 7;
    }
    let mut vf = base.clone();
    if let Some(r) = vf.rfp.as_mut() {
        r.vp_filter = false;
    }
    for (name, cfg) in [
        ("EPP fp rate", &fp),
        ("crit threshold", &th),
        ("vp filter", &vf),
    ] {
        assert_eq!(
            warm_key(cfg),
            key,
            "{name} is inert here and must not re-key"
        );
    }
    // …but live as soon as the gating feature is on.
    let mut crit = base.clone();
    if let Some(r) = crit.rfp.as_mut() {
        r.critical_only = true;
        r.criticality_threshold = 3;
    }
    let mut crit7 = crit.clone();
    if let Some(r) = crit7.rfp.as_mut() {
        r.criticality_threshold = 7;
    }
    assert_ne!(
        warm_key(&crit),
        warm_key(&crit7),
        "threshold is live under critical-only targeting"
    );
    // Projection is idempotent and otherwise lossless.
    let p = warm_projection(&base);
    assert_eq!(warm_projection(&p), p);
    assert_eq!(p.rob_entries, base.rob_entries);
    assert_eq!(p.mem, base.mem);
}

#[test]
fn anomaly_window_selection_is_identical_across_threads_and_probes() {
    // The flight recorder is armed by windows picked from the CPI
    // interval series; that selection must be byte-identical no matter
    // how many threads produced the series or which probe configuration
    // ran alongside it — otherwise `experiments inspect` would record
    // different uops on different machines.
    // The detector needs >= 2 active 8192-uop intervals, so this test
    // runs longer traces than the rest of the file.
    const INSPECT_LEN: u64 = 20_000;
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let suite = rfp_trace::suite();
    let select = |reports: &[SimReport]| -> String {
        reports
            .iter()
            .map(|r| {
                let cpi = r.cpi.as_ref().expect("cpi attached");
                format!(
                    "{}: {:?}\n",
                    r.workload,
                    rfp_stats::detect_anomalies(cpi, r.stats.retired_uops, 4)
                )
            })
            .collect()
    };
    let reference = select(
        &run_grid_obs(std::slice::from_ref(&cfg), INSPECT_LEN, 1)
            .pop()
            .expect("one row"),
    );
    assert!(
        reference.contains("AnomalyWindow"),
        "the suite must yield at least one anomalous window:\n{reference}"
    );
    for threads in [2, 8] {
        let got = select(
            &run_grid_obs(std::slice::from_ref(&cfg), INSPECT_LEN, threads)
                .pop()
                .expect("one row"),
        );
        assert_eq!(got, reference, "threads={threads} selection diverged");
    }
    // Probe-configuration independence: the same windows fall out of a
    // bare CpiStackSink fork (the `inspect` pass-1 path, no tee'd
    // metrics/profile sinks) as out of the full obs grid.
    let pool = WarmPool::new(WarmMode::Exact, INSPECT_LEN);
    let lone: String = suite
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let (stats, sink) = pool.fork_probed(&cfg, &suite, wi, rfp_obs::CpiStackSink::new());
            format!(
                "{}: {:?}\n",
                w.name,
                rfp_stats::detect_anomalies(&sink.into_report(), stats.retired_uops, 4)
            )
        })
        .collect();
    assert_eq!(lone, reference, "probe configuration changed the selection");
}

#[test]
fn flight_recorder_does_not_perturb_the_simulation() {
    // Recorder armed over the whole measured region vs no probe at all:
    // every deterministic counter must match (the recorder is a sink,
    // never back-pressure), and the capture itself must be intact.
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let suite = rfp_trace::suite();
    let pool = WarmPool::new(WarmMode::Exact, LEN);
    for wi in [0, 17, 42] {
        let w = &suite[wi];
        let plain = simulate_workload(&cfg, w, LEN).expect("valid config");
        let rec = rfp_obs::FlightRecorder::new(&[(0, LEN)], LEN as usize + 64);
        let (stats, rec) = pool.fork_probed(&cfg, &suite, wi, rec);
        assert_eq!(
            stats, plain.stats,
            "{} diverged under the flight recorder",
            w.name
        );
        assert_eq!(rec.evicted(), 0, "ring sized for the whole region");
        let records = rec.into_records();
        assert!(!records.is_empty(), "{} captured nothing", w.name);
        assert!(
            records.windows(2).all(|p| p[0].seq < p[1].seq),
            "records must stay in sequence order"
        );
    }
}

#[test]
fn flight_recorder_ring_wraps_without_corruption_on_a_real_run() {
    // Tiny ring on a full workload: old records evict, survivors keep
    // coherent lifecycles (alloc <= issue <= complete <= retire), and the
    // simulation still doesn't notice the recorder.
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let suite = rfp_trace::suite();
    let pool = WarmPool::new(WarmMode::Exact, LEN);
    let cap = 64;
    let rec = rfp_obs::FlightRecorder::new(&[(0, LEN)], cap);
    let plain = simulate_workload(&cfg, &suite[0], LEN).expect("valid config");
    let (stats, rec) = pool.fork_probed(&cfg, &suite, 0, rec);
    assert_eq!(stats, plain.stats, "tiny ring perturbed the run");
    assert!(
        rec.evicted() > 0,
        "the window must overflow a 64-entry ring"
    );
    let records = rec.into_records();
    assert_eq!(records.len(), cap, "ring stays exactly at capacity");
    for r in &records {
        assert!(r.fetch <= r.alloc, "fetch after alloc: {r:?}");
        if let (Some(i), Some(c)) = (r.issue, r.complete) {
            assert!(r.alloc <= i && i <= c, "stage order corrupted: {r:?}");
        }
        if let (Some(c), Some(ret)) = (r.complete, r.retire) {
            assert!(c <= ret, "retire before complete: {r:?}");
        }
    }
}
