//! The work-stealing engine must be a pure performance feature: running
//! the suite on any number of threads yields *byte-identical* reports,
//! in the same order, as a plain serial loop over the suite.

use rfp_bench::{run_grid, run_suite_with_threads};
use rfp_core::{simulate_workload, CoreConfig};
use rfp_stats::SimReport;

const LEN: u64 = 3_000;

fn serial_reference(cfg: &CoreConfig) -> Vec<SimReport> {
    rfp_trace::suite()
        .iter()
        .map(|w| simulate_workload(cfg, w, LEN).expect("valid config"))
        .collect()
}

fn canonical_bytes(reports: &[SimReport]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in reports {
        out.extend_from_slice(r.canonical_text().as_bytes());
        out.push(b'\n');
    }
    out
}

#[test]
fn run_suite_is_byte_identical_at_any_thread_count() {
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let reference = serial_reference(&cfg);
    let reference_bytes = canonical_bytes(&reference);
    for threads in [1, 2, 5, 8] {
        let got = run_suite_with_threads(&cfg, LEN, threads);
        // Structural equality first (wall time is equality-transparent)…
        assert_eq!(got, reference, "threads={threads} diverged");
        // …then the stronger claim: the canonical serialisation is
        // byte-for-byte what the serial loop produces.
        assert_eq!(
            canonical_bytes(&got),
            reference_bytes,
            "threads={threads} canonical bytes diverged"
        );
    }
}

#[test]
fn grid_rows_are_independent_of_sibling_configs() {
    // A config's row must not change because it shared a grid with other
    // configs (no cross-job state leaks through the engine).
    let base = CoreConfig::tiger_lake();
    let rfp = CoreConfig::tiger_lake().with_rfp();
    let alone = run_grid(std::slice::from_ref(&base), LEN, 4)
        .pop()
        .expect("one row");
    let paired = run_grid(&[rfp, base.clone()], LEN, 3);
    assert_eq!(paired[1], alone);
}
