//! The work-stealing engine must be a pure performance feature: running
//! the suite on any number of threads yields *byte-identical* reports,
//! in the same order, as a plain serial loop over the suite.

use rfp_bench::{run_grid, run_grid_obs, run_suite_with_threads};
use rfp_core::{simulate_workload, CoreConfig};
use rfp_stats::{ObsMetrics, SimReport};

const LEN: u64 = 3_000;

fn serial_reference(cfg: &CoreConfig) -> Vec<SimReport> {
    rfp_trace::suite()
        .iter()
        .map(|w| simulate_workload(cfg, w, LEN).expect("valid config"))
        .collect()
}

fn canonical_bytes(reports: &[SimReport]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in reports {
        out.extend_from_slice(r.canonical_text().as_bytes());
        out.push(b'\n');
    }
    out
}

#[test]
fn run_suite_is_byte_identical_at_any_thread_count() {
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let reference = serial_reference(&cfg);
    let reference_bytes = canonical_bytes(&reference);
    for threads in [1, 2, 5, 8] {
        let got = run_suite_with_threads(&cfg, LEN, threads);
        // Structural equality first (wall time is equality-transparent)…
        assert_eq!(got, reference, "threads={threads} diverged");
        // …then the stronger claim: the canonical serialisation is
        // byte-for-byte what the serial loop produces.
        assert_eq!(
            canonical_bytes(&got),
            reference_bytes,
            "threads={threads} canonical bytes diverged"
        );
    }
}

#[test]
fn obs_runs_are_byte_identical_at_any_thread_count() {
    // The instrumented grid must be as deterministic as the plain one:
    // histograms are per-job state, reduced into slots by grid position,
    // so canonical bytes (which include the obs JSON) cannot depend on
    // the thread count or on which worker ran which job.
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let reference = run_grid_obs(std::slice::from_ref(&cfg), LEN, 1)
        .pop()
        .expect("one row");
    assert!(reference.iter().all(|r| r.obs.is_some()));
    assert!(
        reference.iter().any(|r| r
            .obs
            .as_ref()
            .is_some_and(|m| m.rfp_complete_rel_issue.total() > 0)),
        "the suite must produce timeliness samples"
    );
    let reference_bytes = canonical_bytes(&reference);
    for threads in [2, 5, 8] {
        let got = run_grid_obs(std::slice::from_ref(&cfg), LEN, threads)
            .pop()
            .expect("one row");
        assert_eq!(
            canonical_bytes(&got),
            reference_bytes,
            "threads={threads} obs canonical bytes diverged"
        );
    }
}

#[test]
fn merged_histograms_are_order_independent() {
    // Aggregating per-workload sinks must give byte-identical JSON no
    // matter the merge order — the property the work-stealing engine
    // relies on when per-thread results interleave arbitrarily.
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let reports = run_grid_obs(std::slice::from_ref(&cfg), LEN, 4)
        .pop()
        .expect("one row");
    let mut forward = ObsMetrics::default();
    for r in &reports {
        forward.merge(r.obs.as_ref().expect("obs attached"));
    }
    let mut reverse = ObsMetrics::default();
    for r in reports.iter().rev() {
        reverse.merge(r.obs.as_ref().expect("obs attached"));
    }
    assert!(forward.load_use_latency.total() > 0);
    assert_eq!(forward.to_json(), reverse.to_json());
}

#[test]
fn obs_instrumentation_does_not_perturb_the_simulation() {
    // Same grid with and without sinks: every deterministic counter must
    // match exactly (the probe is observation, never back-pressure).
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let plain = run_grid(std::slice::from_ref(&cfg), LEN, 4)
        .pop()
        .expect("one row");
    let probed = run_grid_obs(std::slice::from_ref(&cfg), LEN, 4)
        .pop()
        .expect("one row");
    for (p, o) in plain.iter().zip(&probed) {
        assert_eq!(
            p.stats, o.stats,
            "{} diverged under instrumentation",
            p.workload
        );
    }
}

#[test]
fn grid_rows_are_independent_of_sibling_configs() {
    // A config's row must not change because it shared a grid with other
    // configs (no cross-job state leaks through the engine).
    let base = CoreConfig::tiger_lake();
    let rfp = CoreConfig::tiger_lake().with_rfp();
    let alone = run_grid(std::slice::from_ref(&base), LEN, 4)
        .pop()
        .expect("one row");
    let paired = run_grid(&[rfp, base.clone()], LEN, 3);
    assert_eq!(paired[1], alone);
}
