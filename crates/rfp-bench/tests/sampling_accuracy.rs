//! The accuracy contract of phase-sampled simulation: for **every**
//! workload in the suite, the sampled IPC, prefetch coverage, cycle
//! count and CPI-bucket totals must stay within the tolerances committed
//! in `baselines/sampling_tolerances.json` of the full-fidelity run —
//! the same overlay file the CI sampling gate feeds to
//! `experiments diff`, so this test and the gate cannot drift apart.

use rfp_bench::{
    diff_metrics_with, run_grid_pooled, sampling_error_report_json, sampling_report_json, SimMode,
    WarmMode, WarmPool, SAMPLE_INTERVAL_UOPS,
};
use rfp_core::CoreConfig;
use rfp_stats::SimReport;

/// Three full sampling intervals: enough for the clusterer to have real
/// choices to make, small enough that the full-fidelity reference stays
/// test-sized.
const LEN: u64 = 3 * SAMPLE_INTERVAL_UOPS;

const TOLERANCES_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../baselines/sampling_tolerances.json"
);

fn rfp_row(sim: SimMode) -> Vec<SimReport> {
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let pool = WarmPool::with_sim(WarmMode::Exact, sim, LEN);
    run_grid_pooled(&pool, std::slice::from_ref(&cfg), 4, true)
        .reports
        .pop()
        .expect("one config in, one row out")
}

#[test]
fn sampled_metrics_stay_within_committed_tolerances_for_every_workload() {
    let cfg = CoreConfig::tiger_lake().with_rfp();
    let full = sampling_report_json(&cfg, LEN, &rfp_row(SimMode::Full));
    let sampled = sampling_report_json(&cfg, LEN, &rfp_row(SimMode::Sample));

    // Whole-suite coverage: one row per workload in both documents.
    let n = rfp_trace::suite().len();
    assert_eq!(full.matches("\"workload\":").count(), n);
    assert_eq!(sampled.matches("\"workload\":").count(), n);

    // The committed tolerance overlay is the single source of truth for
    // "close enough" — shared verbatim with the CI sampling gate.
    let tolerances = std::fs::read_to_string(TOLERANCES_PATH)
        .unwrap_or_else(|e| panic!("read {TOLERANCES_PATH}: {e}"));
    let outcome =
        diff_metrics_with(&full, &sampled, Some(&tolerances)).expect("well-formed reports");
    assert!(
        outcome.clean(),
        "sampled metrics breached the committed tolerances:\n{}",
        outcome.render()
    );

    // The condensed error report (what CI uploads as an artifact) must
    // agree with the gate: it uses the same relative-error formula, so a
    // clean diff implies its worst-case error is within the loosest
    // committed bound.
    let report = sampling_error_report_json(&full, &sampled).expect("well-formed reports");
    assert!(report.contains("\"worst_metric\""));
    assert!(report.contains("\"p95\""));
}
