//! Facade crate for the Register File Prefetching (ISCA 2022) reproduction.
//!
//! Re-exports the workspace crates under short module names so downstream
//! users depend on one crate:
//!
//! * [`trace`] — micro-op model + the 65-workload synthetic suite
//! * [`mem`] — caches, TLBs, MSHRs, ports, oracle modes
//! * [`predictors`] — PT/PAT, value/address predictors, store sets, gshare
//! * [`core`] — the OOO core with the RFP engine
//! * [`obs`] — pipeline/prefetch observability: probes, Chrome traces,
//!   latency histograms
//! * [`stats`] — counters, reports, formatting
//! * [`types`] — shared ids and address types
//!
//! # Examples
//!
//! ```
//! use rfp::core::{simulate_workload, CoreConfig};
//!
//! let w = rfp::trace::by_name("spec06_libquantum").expect("in the suite");
//! let base = simulate_workload(&CoreConfig::tiger_lake(), &w, 20_000)?;
//! let with_rfp = simulate_workload(&CoreConfig::tiger_lake().with_rfp(), &w, 20_000)?;
//! assert!(with_rfp.coverage() > 0.0);
//! assert!(base.ipc() > 0.0);
//! # Ok::<(), rfp::types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rfp_core as core;
pub use rfp_mem as mem;
pub use rfp_obs as obs;
pub use rfp_predictors as predictors;
pub use rfp_stats as stats;
pub use rfp_trace as trace;
pub use rfp_types as types;
