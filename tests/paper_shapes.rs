//! The paper's qualitative results, checked at reduced scale on a workload
//! subset (the full-scale numbers live in EXPERIMENTS.md and are produced
//! by the `experiments` binary).

use rfp::core::{simulate_workload, CoreConfig, OracleMode, VpMode};
use rfp::predictors::ValuePredictorConfig;
use rfp::stats::{geomean_speedup, SimReport};
use rfp::trace::Workload;

const LEN: u64 = 25_000;

fn subset() -> Vec<Workload> {
    [
        "spec06_gcc",
        "spec06_libquantum",
        "spec06_namd",
        "spec17_mcf",
        "spec17_xalancbmk",
        "spec17_roms",
        "hadoop",
        "geekbench_int",
    ]
    .iter()
    .map(|n| rfp::trace::by_name(n).expect("in suite"))
    .collect()
}

fn run(cfg: &CoreConfig) -> Vec<SimReport> {
    subset()
        .iter()
        .map(|w| simulate_workload(cfg, w, LEN).expect("valid"))
        .collect()
}

#[test]
fn oracle_l1_to_rf_has_substantial_headroom() {
    let base = run(&CoreConfig::tiger_lake());
    let oracle = run(&CoreConfig::tiger_lake().with_oracle(OracleMode::L1ToRf));
    let s = geomean_speedup(&base, &oracle).unwrap();
    assert!(s > 1.02, "oracle L1->RF speedup {s} should be substantial");
}

#[test]
fn rfp_speeds_up_but_less_than_the_oracle() {
    let base = run(&CoreConfig::tiger_lake());
    let rfp = run(&CoreConfig::tiger_lake().with_rfp());
    let oracle = run(&CoreConfig::tiger_lake().with_oracle(OracleMode::L1ToRf));
    let s_rfp = geomean_speedup(&base, &rfp).unwrap();
    let s_oracle = geomean_speedup(&base, &oracle).unwrap();
    assert!(s_rfp > 1.005, "RFP speedup {s_rfp} too small");
    assert!(
        s_rfp < s_oracle * 1.01,
        "RFP ({s_rfp}) cannot beat the oracle ({s_oracle}) by construction"
    );
}

#[test]
fn rfp_coverage_is_substantial_and_wrong_prefetches_are_rare() {
    let rfp = run(&CoreConfig::tiger_lake().with_rfp());
    let cov: f64 = rfp.iter().map(|r| r.coverage()).sum::<f64>() / rfp.len() as f64;
    let wrong: f64 = rfp.iter().map(|r| r.wrong_frac()).sum::<f64>() / rfp.len() as f64;
    assert!(cov > 0.15, "coverage {cov} too low");
    assert!(wrong < 0.10, "wrong-prefetch rate {wrong} too high");
    assert!(wrong < cov, "accuracy must dominate");
}

#[test]
fn vp_and_rfp_are_synergistic() {
    let base = run(&CoreConfig::tiger_lake());

    let mut vp_cfg = CoreConfig::tiger_lake();
    vp_cfg.vp = VpMode::Eves(ValuePredictorConfig::default());
    let vp = run(&vp_cfg);

    let rfp = run(&CoreConfig::tiger_lake().with_rfp());

    let mut both_cfg = CoreConfig::tiger_lake().with_rfp();
    both_cfg.vp = VpMode::Eves(ValuePredictorConfig::default());
    let both = run(&both_cfg);

    let s_vp = geomean_speedup(&base, &vp).unwrap();
    let s_rfp = geomean_speedup(&base, &rfp).unwrap();
    let s_both = geomean_speedup(&base, &both).unwrap();
    // The paper's Fig. 15: VP+RFP (4.15%) beats standalone VP (2.2%) and
    // standalone RFP (3.1%).
    assert!(
        s_both >= s_vp.max(s_rfp) - 0.005,
        "fusion {s_both} should be at least the best of VP {s_vp} / RFP {s_rfp}"
    );
}

#[test]
fn dedicated_ports_execute_at_least_as_many_prefetches() {
    let shared = run(&CoreConfig::tiger_lake().with_rfp());
    let mut ded_cfg = CoreConfig::tiger_lake().with_rfp();
    ded_cfg.ports.dedicated_rfp = ded_cfg.ports.load_ports;
    let dedicated = run(&ded_cfg);
    let ex = |rs: &[SimReport]| rs.iter().map(|r| r.executed_frac()).sum::<f64>() / rs.len() as f64;
    assert!(
        ex(&dedicated) >= ex(&shared) * 0.98,
        "dedicated {} vs shared {}",
        ex(&dedicated),
        ex(&shared)
    );
}

#[test]
fn fp_bound_workloads_are_insensitive_to_rfp() {
    // spec17_wrf: high coverage, negligible gain (paper §5.1).
    let w = rfp::trace::by_name("spec17_wrf").unwrap();
    let base = simulate_workload(&CoreConfig::tiger_lake(), &w, LEN).unwrap();
    let r = simulate_workload(&CoreConfig::tiger_lake().with_rfp(), &w, LEN).unwrap();
    let gain = r.ipc() / base.ipc() - 1.0;
    assert!(gain.abs() < 0.04, "wrf-like workload gained {gain}");
    assert!(r.coverage() > 0.2, "wrf-like coverage should be high");
}

#[test]
fn wider_confidence_cuts_wrong_prefetches() {
    let narrow = run(&CoreConfig::tiger_lake().with_rfp());
    let mut wide_cfg = CoreConfig::tiger_lake().with_rfp();
    if let Some(r) = wide_cfg.rfp.as_mut() {
        r.table.confidence_bits = 4;
    }
    let wide = run(&wide_cfg);
    let wrong = |rs: &[SimReport]| rs.iter().map(|r| r.wrong_frac()).sum::<f64>();
    let cov = |rs: &[SimReport]| rs.iter().map(|r| r.coverage()).sum::<f64>();
    assert!(
        wrong(&wide) <= wrong(&narrow) + 1e-9,
        "accuracy must improve"
    );
    assert!(cov(&wide) <= cov(&narrow) + 1e-9, "coverage must drop");
}

#[test]
fn l1_latency_increase_grows_rfp_value() {
    let base5 = run(&CoreConfig::tiger_lake());
    let rfp5 = run(&CoreConfig::tiger_lake().with_rfp());
    let mut b7 = CoreConfig::tiger_lake();
    b7.mem.l1.latency = 8;
    let mut r7cfg = CoreConfig::tiger_lake().with_rfp();
    r7cfg.mem.l1.latency = 8;
    let base8 = run(&b7);
    let rfp8 = run(&r7cfg);
    let s5 = geomean_speedup(&base5, &rfp5).unwrap();
    let s8 = geomean_speedup(&base8, &rfp8).unwrap();
    assert!(
        s8 > s5 - 0.005,
        "slower L1 should make RFP more valuable: {s5} vs {s8}"
    );
}
