//! Cross-crate invariants: whatever the workload, the simulated pipeline
//! must respect conservation and ordering laws.

use rfp::core::{simulate_workload, CoreConfig};
use rfp::trace::UopKind;

const LEN: u64 = 15_000;

#[test]
fn retired_counts_match_trace_composition() {
    // With zero warmup, retired counters must exactly match the trace.
    let w = rfp::trace::by_name("spec06_gcc").unwrap();
    let ops: Vec<_> = w.trace(LEN).collect();
    let loads = ops.iter().filter(|o| o.kind.is_load()).count() as u64;
    let stores = ops.iter().filter(|o| o.kind.is_store()).count() as u64;
    let branches = ops.iter().filter(|o| o.kind.is_branch()).count() as u64;

    let stats = rfp::core::simulate(&CoreConfig::tiger_lake(), ops).unwrap();
    assert_eq!(stats.retired_uops, LEN);
    assert_eq!(stats.retired_loads, loads);
    assert_eq!(stats.retired_stores, stores);
    assert_eq!(stats.retired_branches, branches);
}

#[test]
fn ipc_never_exceeds_machine_width() {
    for name in ["spec06_hmmer", "spec17_x264", "geekbench_int"] {
        let w = rfp::trace::by_name(name).unwrap();
        let r = simulate_workload(&CoreConfig::tiger_lake(), &w, LEN).unwrap();
        assert!(r.ipc() <= 5.0 + 1e-9, "{name}: ipc {}", r.ipc());
        assert!(r.ipc() > 0.1, "{name}: ipc {}", r.ipc());
    }
}

#[test]
fn rfp_funnel_is_monotonic() {
    // injected >= executed >= useful; useful >= fully hidden.
    for name in ["spec17_mcf", "spec06_bzip2", "hadoop"] {
        let w = rfp::trace::by_name(name).unwrap();
        let r = simulate_workload(&CoreConfig::tiger_lake().with_rfp(), &w, LEN).unwrap();
        let s = &r.stats;
        assert!(s.rfp_injected >= s.rfp_executed, "{name}");
        assert!(s.rfp_executed >= s.rfp_useful, "{name}");
        assert!(s.rfp_useful >= s.rfp_fully_hidden, "{name}");
        assert!(
            s.rfp_executed >= s.rfp_wrong_addr,
            "{name}: wrong prefetches must have executed"
        );
    }
}

#[test]
fn hit_distribution_sums_to_one() {
    let w = rfp::trace::by_name("spec17_omnetpp").unwrap();
    let r = simulate_workload(&CoreConfig::tiger_lake(), &w, LEN).unwrap();
    let sum: f64 = r.hit_distribution().iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn rfp_does_not_slow_the_baseline_down_materially() {
    // The paper stresses that demand loads keep priority; RFP prefetches
    // must never meaningfully hurt (Fig. 11's left edge sits near zero).
    for name in ["spec06_tonto", "spec06_gamess", "spec17_wrf"] {
        let w = rfp::trace::by_name(name).unwrap();
        let base = simulate_workload(&CoreConfig::tiger_lake(), &w, LEN).unwrap();
        let r = simulate_workload(&CoreConfig::tiger_lake().with_rfp(), &w, LEN).unwrap();
        assert!(
            r.ipc() >= base.ipc() * 0.97,
            "{name}: rfp {} vs base {}",
            r.ipc(),
            base.ipc()
        );
    }
}

#[test]
fn every_uop_kind_flows_through_the_pipeline() {
    let w = rfp::trace::by_name("spec17_cam4").unwrap();
    let ops: Vec<_> = w.trace(LEN).collect();
    assert!(ops.iter().any(|o| matches!(o.kind, UopKind::Fp { .. })));
    assert!(ops.iter().any(|o| matches!(o.kind, UopKind::Alu { .. })));
    let stats = rfp::core::simulate(&CoreConfig::tiger_lake(), ops).unwrap();
    assert_eq!(stats.retired_uops, LEN);
}
