//! The whole stack is seeded and deterministic: the same configuration and
//! workload must reproduce bit-identical statistics, across every feature
//! combination.

use rfp::core::{simulate_workload, CoreConfig, VpMode};
use rfp::predictors::{DlvpConfig, ValuePredictorConfig};

const LEN: u64 = 10_000;

fn assert_deterministic(cfg: &CoreConfig, name: &str) {
    let w = rfp::trace::by_name(name).unwrap();
    let a = simulate_workload(cfg, &w, LEN).unwrap();
    let b = simulate_workload(cfg, &w, LEN).unwrap();
    assert_eq!(a.stats, b.stats, "non-deterministic run for {name}");
}

#[test]
fn baseline_is_deterministic() {
    assert_deterministic(&CoreConfig::tiger_lake(), "spec06_mcf");
}

#[test]
fn rfp_is_deterministic() {
    assert_deterministic(&CoreConfig::tiger_lake().with_rfp(), "spec17_gcc");
}

#[test]
fn vp_modes_are_deterministic() {
    let mut c = CoreConfig::tiger_lake();
    c.vp = VpMode::Eves(ValuePredictorConfig::default());
    assert_deterministic(&c, "spec17_x264");

    c.vp = VpMode::Composite(ValuePredictorConfig::default(), DlvpConfig::default());
    assert_deterministic(&c, "spark");

    c.vp = VpMode::Epp(DlvpConfig::default());
    assert_deterministic(&c, "tpcc");
}

#[test]
fn different_seeds_give_different_programs() {
    let suite = rfp::trace::suite();
    let a: Vec<_> = suite[0].trace(500).collect();
    let b: Vec<_> = suite[1].trace(500).collect();
    assert_ne!(a, b);
}

#[test]
fn baseline_2x_is_deterministic_and_faster() {
    let w = rfp::trace::by_name("spec06_hmmer").unwrap();
    let small = simulate_workload(&CoreConfig::tiger_lake(), &w, LEN).unwrap();
    let big_a = simulate_workload(&CoreConfig::baseline_2x(), &w, LEN).unwrap();
    let big_b = simulate_workload(&CoreConfig::baseline_2x(), &w, LEN).unwrap();
    assert_eq!(big_a.stats, big_b.stats);
    assert!(
        big_a.ipc() >= small.ipc() * 0.99,
        "a doubled machine should not be slower: {} vs {}",
        big_a.ipc(),
        small.ipc()
    );
}
