//! Property-based tests across the whole stack: arbitrary (valid)
//! generator parameters must always produce traces the core can retire
//! completely, with all invariants intact.

use proptest::prelude::*;
use rfp::core::{simulate, CoreConfig};
use rfp::trace::{AddrMix, GenParams, Program, TraceGen, ValueMix, WorkingSetMix};

fn arb_params() -> impl Strategy<Value = GenParams> {
    (
        2usize..8,           // blocks
        4usize..16,          // block_min
        0usize..12,          // block extra
        0.05f64..0.35,       // load_frac
        0.02f64..0.2,        // store_frac
        0.0f64..0.5,         // fp_frac
        0.0f64..0.6,         // early_addr
        0.0f64..0.08,        // mispredict
        proptest::bool::ANY, // fp_chain
        0.0f64..1.0,         // spine_frac
        0.0f64..0.7,         // addr_from_spine
    )
        .prop_map(
            |(blocks, bmin, bextra, lf, sf, fp, early, mr, chain, spine, afs)| GenParams {
                blocks,
                block_min: bmin,
                block_max: bmin + bextra,
                load_frac: lf,
                store_frac: sf,
                fp_frac: fp,
                addr_mix: AddrMix {
                    stride: 0.4,
                    pattern2d: 0.1,
                    constant: 0.1,
                    chase: 0.2,
                    gather: 0.2,
                },
                value_mix: ValueMix {
                    constant: 0.2,
                    stride: 0.1,
                    random: 0.7,
                },
                ws_mix: WorkingSetMix {
                    l1: 0.9,
                    l2: 0.05,
                    llc: 0.03,
                    dram: 0.02,
                },
                early_addr_frac: early,
                chain_bias: 0.5,
                load_consumer_frac: 0.6,
                mispredict_rate: mr,
                fp_chain: chain,
                store_alias_frac: 0.05,
                spine_frac: spine,
                addr_from_spine: afs,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_valid_program_retires_completely(params in arb_params(), seed in 0u64..1_000_000) {
        let program = Program::synthesize(&params, seed).unwrap();
        let trace = TraceGen::new(program, seed, 4_000);
        let stats = simulate(&CoreConfig::tiger_lake(), trace).unwrap();
        prop_assert_eq!(stats.retired_uops, 4_000);
        prop_assert!(stats.cycles > 0);
        // Conservation: all loads were served somewhere or forwarded.
        let served: u64 = stats.load_hit_levels.iter().sum::<u64>() + stats.load_forwarded;
        prop_assert!(served >= stats.retired_loads,
            "loads {} > served {}", stats.retired_loads, served);
    }

    #[test]
    fn rfp_funnel_invariants_hold_for_any_program(params in arb_params(), seed in 0u64..1_000_000) {
        let program = Program::synthesize(&params, seed).unwrap();
        let trace = TraceGen::new(program, seed, 4_000);
        let stats = simulate(&CoreConfig::tiger_lake().with_rfp(), trace).unwrap();
        prop_assert_eq!(stats.retired_uops, 4_000);
        prop_assert!(stats.rfp_executed <= stats.rfp_injected);
        prop_assert!(stats.rfp_useful <= stats.rfp_executed);
        prop_assert!(stats.rfp_fully_hidden <= stats.rfp_useful);
        prop_assert!(stats.rfp_useful <= stats.retired_loads);
    }

    #[test]
    fn traces_are_exact_length_and_in_bounds(params in arb_params(), seed in 0u64..1_000_000) {
        let program = Program::synthesize(&params, seed).unwrap();
        let max_end = program
            .patterns
            .iter()
            .map(|p| p.base.raw() + p.region_bytes)
            .max()
            .unwrap_or(0);
        let ops: Vec<_> = TraceGen::new(program, seed, 2_000).collect();
        prop_assert_eq!(ops.len(), 2_000);
        for op in &ops {
            if let Some(m) = op.mem {
                prop_assert!(m.addr.raw() < max_end, "address out of bounds");
            }
        }
    }
}
