//! The text trace format and the simulator compose: external traces run
//! end-to-end, and generated traces survive a serialize/parse round trip
//! without changing simulation results.

use rfp::core::{simulate, CoreConfig};
use rfp::trace::{parse_trace, write_trace};

#[test]
fn serialized_trace_simulates_identically() {
    let w = rfp::trace::by_name("spec06_gcc").unwrap();
    let ops: Vec<_> = w.trace(8_000).collect();
    let round_tripped = parse_trace(&write_trace(&ops)).unwrap();
    assert_eq!(round_tripped, ops);

    let a = simulate(&CoreConfig::tiger_lake().with_rfp(), ops).unwrap();
    let b = simulate(&CoreConfig::tiger_lake().with_rfp(), round_tripped).unwrap();
    assert_eq!(a, b, "same trace bytes must give bit-identical stats");
}

#[test]
fn hand_written_trace_runs() {
    let text = "\
# two-instruction loop
L 0x400000 r1 r2 0x1000 8 7
A 0x400004 1 r2 r3
B 0x400008 r3 t n
";
    let one_iter = parse_trace(text).unwrap();
    let ops: Vec<_> = std::iter::repeat_with(|| one_iter.clone())
        .take(500)
        .flatten()
        .collect();
    let stats = simulate(&CoreConfig::tiger_lake(), ops).unwrap();
    assert_eq!(stats.retired_uops, 1_500);
    assert_eq!(stats.retired_loads, 500);
    assert_eq!(stats.retired_branches, 500);
}

#[test]
fn parse_errors_are_reported_with_context() {
    let err = parse_trace("L 0x400000 r1 r2 0x1000 8 7\nL bogus\n").unwrap_err();
    assert_eq!(err.line(), 2);
}
