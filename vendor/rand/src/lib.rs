//! Offline vendored shim of the `rand` 0.8 API surface this workspace
//! uses. The build container has no network access to crates.io, so the
//! workspace patches `rand` to this crate (see `[patch.crates-io]` in the
//! workspace manifest).
//!
//! Implemented subset:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded from a SplitMix64 stream
//! * [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] over integer and
//!   float ranges (half-open and inclusive)
//!
//! The generator is high-quality and deterministic, but its output stream
//! is **not** bit-compatible with upstream `rand`; all workspace results
//! are calibrated against this implementation.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Multiply-shift bounded sampling: uniform in `[0, span)` (`span > 0`).
fn bounded(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= 1 << 64);
    ((rng.next_u64() as u128) * span) >> 64
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Draws a uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Named generators (shim provides only [`rngs::SmallRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding recipe.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SmallRng {
        /// Returns the raw xoshiro256++ state, for checkpoint/restore of
        /// deterministic simulations (not part of the upstream API).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured with
        /// [`SmallRng::state`]; the restored stream continues bit-exactly.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }
}
