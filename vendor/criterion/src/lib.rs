//! Offline vendored shim of the `criterion` 0.5 API surface this
//! workspace uses (the build container cannot reach crates.io; see
//! `[patch.crates-io]` in the workspace manifest).
//!
//! It is a minimal-but-honest wall-clock harness: each benchmark body is
//! warmed up, then timed over batches whose size doubles until a target
//! measurement window is filled, and the mean ns/iter is printed. There
//! are no statistical reports, plots, or saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum total measured time before a benchmark result is reported.
const TARGET_WINDOW: Duration = Duration::from_millis(200);

/// Warmup time discarded before measurement begins.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its mean wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run until the warmup window elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_WINDOW {
            black_box(routine());
        }

        // Measure in doubling batches until the target window is filled.
        let mut batch: u64 = 1;
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        while total_time < TARGET_WINDOW {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_time += start.elapsed();
            total_iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.ns_per_iter = total_time.as_nanos() as f64 / total_iters as f64;
    }
}

/// Runs one named benchmark and prints its result.
fn run_benchmark(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    let per_iter = b.ns_per_iter;
    if per_iter >= 1_000_000.0 {
        println!("{name:<55} {:>12.3} ms/iter", per_iter / 1_000_000.0);
    } else if per_iter >= 1_000.0 {
        println!("{name:<55} {:>12.3} us/iter", per_iter / 1_000.0);
    } else {
        println!("{name:<55} {per_iter:>12.1} ns/iter");
    }
}

/// Top-level benchmark driver (shim: configuration-free).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_benchmark(name, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed measurement
    /// window makes the upstream sample count meaningless here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (see [`Self::sample_size`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (and possibly filters); the
            // shim runs everything unconditionally.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
        assert_eq!(BenchmarkId::new("f", "x").id, "f/x");
    }
}
