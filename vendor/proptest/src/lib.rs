//! Offline vendored shim of the `proptest` 1.x API surface this workspace
//! uses (the build container cannot reach crates.io; see
//! `[patch.crates-io]` in the workspace manifest).
//!
//! Implemented subset:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`)
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`]
//! * strategies: integer/float ranges, `any::<T>()`, tuples up to arity
//!   12, [`collection::vec`], [`bool::ANY`], and [`Strategy::prop_map`]
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! panics immediately with the generated inputs, which is enough to
//! reproduce (the runner is seeded deterministically).

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng as _;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Draws a uniform value over the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    /// Strategy over `T`'s whole domain; see [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point: a uniform whole-domain strategy.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod collection {
    //! Collection strategies ([`vec`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng as _;

    /// An inclusive length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Strategy generating both booleans with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Uniform boolean strategy.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner used by the [`proptest!`] macro.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// The generator handed to strategies (deterministically seeded).
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Creates the fixed-seed runner generator.
        pub fn deterministic() -> Self {
            TestRng(SmallRng::seed_from_u64(0x5eed_cafe_f00d_d00d))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case's assumptions did not hold; generate a fresh one.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (vacuous) case.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config requiring `cases` passing cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Runs `case` until `config.cases` cases pass; panics on failure.
    pub fn run(
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    ) {
        let mut rng = TestRng::deterministic();
        let mut passed = 0u32;
        let mut rejected = 0u64;
        while passed < config.cases {
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= u64::from(config.cases) * 256,
                        "proptest: too many rejected cases ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed: {msg}\n  inputs: {inputs}")
                }
            }
        }
    }
}

pub mod prelude {
    //! Everything tests conventionally glob-import.

    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts `cond` inside a [`proptest!`] body, failing the case (not the
/// whole process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Rejects the current case when `cond` is false (vacuous input).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)`
/// item becomes an ordinary `#[test]` that draws inputs from the listed
/// strategies and runs the body for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(&config, |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = (move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    (inputs, outcome)
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -2i64..=2, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn prop_map_applies(s in (1u64..4, 1u64..4).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..=6).contains(&s));
        }

        #[test]
        fn assume_rejects_quietly(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        crate::proptest!(
            @with_config (ProptestConfig::with_cases(4))
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        );
        inner();
    }
}
